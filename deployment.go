package iupdater

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"iupdater/internal/core"
	"iupdater/internal/fingerprint"
	"iupdater/internal/geom"
	"iupdater/internal/loc"
	"iupdater/internal/obs"
	"iupdater/internal/trace"
)

// Geometry describes the deployment layout needed to turn fingerprint
// column indices into positions: the area dimensions and the strip-major
// grid shape.
type Geometry struct {
	// WidthM is the extent along the links (TX->RX), meters.
	WidthM float64
	// HeightM is the extent across the links, meters.
	HeightM float64
	// Links is the number of parallel links M.
	Links int
	// PerStrip is the number of grid cells along each link K (N = M*K).
	PerStrip int
}

func (g Geometry) grid() geom.Grid {
	return geom.NewGrid(g.WidthM, g.HeightM, g.Links, g.PerStrip)
}

// NumCells returns the number of grid locations N = Links * PerStrip.
func (g Geometry) NumCells() int { return g.Links * g.PerStrip }

// Position is a point estimate in meters.
type Position struct {
	X, Y float64
}

// Option configures a Deployment (and, via the deprecated shims, a
// Pipeline).
type Option func(*config)

// PipelineOption is the former name of Option.
//
// Deprecated: use Option.
type PipelineOption = Option

type config struct {
	numRefs    int
	paperInit  bool
	noC1       bool
	noC2       bool
	workers    int
	updateConc int
	store      *Store
	search     loc.IndexConfig
	tracer     *trace.Tracer
	site       string
}

// WithReferenceCount overrides the number of reference locations (default:
// the number of links, the paper's minimal choice).
func WithReferenceCount(n int) Option {
	return func(c *config) { c.numRefs = n }
}

// WithPaperInitialization switches the solver to Algorithm 1's random
// initialization instead of the default truncated-SVD warm start.
func WithPaperInitialization() Option {
	return func(c *config) { c.paperInit = true }
}

// WithoutReferenceConstraint disables Constraint 1 (for ablation).
func WithoutReferenceConstraint() Option {
	return func(c *config) { c.noC1 = true }
}

// WithoutStabilityConstraint disables Constraint 2 (for ablation).
func WithoutStabilityConstraint() Option {
	return func(c *config) { c.noC2 = true }
}

// WithWorkers bounds the worker pool used by LocateBatch (default:
// GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithUpdateConcurrency shards the reconstruction solver's ALS sweeps
// over n workers during Update (n <= 0 selects GOMAXPROCS; the default
// 1 runs the bit-exact sequential sweeps). The parallel sweep is
// deterministic for every worker count; see core.WithConcurrency for
// the coupling semantics.
func WithUpdateConcurrency(n int) Option {
	// 0 means "unset" in config, so normalize the documented
	// GOMAXPROCS request (n <= 0) to -1.
	if n <= 0 {
		n = -1
	}
	return func(c *config) { c.updateConc = n }
}

// WithExactSearch forces every snapshot's locate index to the bit-exact
// exhaustive reference scan: no shard routing, no candidate pruning,
// every fingerprint column evaluated per query. The default (pruned)
// search already returns bit-identical results — including tie-breaks —
// while touching fewer columns, so this option exists for A/B
// verification and as the ground truth the pruned and sharded tiers are
// tested against, not because the default trades accuracy.
func WithExactSearch() Option {
	return func(c *config) { c.search.Mode = loc.SearchExact }
}

// WithShardedSearch switches every snapshot's locate index to the
// approximate coarse-to-fine tier: each query is routed to the fanout
// most promising column shards (contiguous grid-cell blocks) and only
// their columns are evaluated, making query cost nearly independent of
// the grid size. Results can differ from exact search when the true
// best column lies outside the routed shards; on the evaluation
// scenarios the mean localization-error degradation is within 0.1 dB of
// exact at fanout 4 (the default for fanout <= 0) — see the package
// documentation for the accuracy budget. Drift monitoring is
// unaffected: the residual always uses an exact tier.
func WithShardedSearch(fanout int) Option {
	return func(c *config) {
		c.search.Mode = loc.SearchSharded
		c.search.Fanout = fanout
	}
}

// WithTracer attaches a request-scoped span tracer (see internal/trace)
// under the given site label: Locate records a per-query trace with the
// exact search cost of that query, and every Update/Install/Rollback
// publish records its pipeline stages (reconstruct, snapshot build,
// persist, swap). Sampling is the tracer's policy — the unsampled
// hot-path cost is pooled scratch recording only, with zero
// allocations. A nil tracer is the same as not using this option.
func WithTracer(t *trace.Tracer, site string) Option {
	return func(c *config) {
		c.tracer = t
		c.site = site
	}
}

// WithStore attaches a durable snapshot store: every published snapshot
// (the initial database, each Update/Install/auto-update, rollbacks) is
// written and fsynced to the store before it becomes visible to queries,
// so a process restart warm-starts from the latest version with
// OpenDeployment instead of re-surveying. Persistence happens on the
// serialized write path; the lock-free query path never touches disk.
// On that write path the outgoing snapshot is diffed against the last
// persisted one, and a publish that changed only a few fingerprint
// columns is persisted as a small delta record instead of a full
// re-serialization (see Store and WithMaxChain) — the fsync-before-swap
// durability contract is identical for both record kinds.
//
// If the store already holds snapshots (e.g. from a previous deployment
// life), version numbering continues after the stored history instead of
// restarting at 1. A Store must be attached to at most one live
// Deployment at a time.
func WithStore(st *Store) Option {
	return func(c *config) { c.store = st }
}

// Snapshot is one immutable published version of the fingerprint
// database, with the localizer built for it at publish time. Queries that
// need a consistent view across several calls pin a snapshot once and
// query it directly; the Deployment's own query methods always use the
// latest snapshot.
type Snapshot struct {
	version uint64
	fp      Matrix
	ix      *loc.Index
	omp     *loc.OMPPoint
	grid    geom.Grid
}

// newSnapshot builds the snapshot's locate index once, on the write
// path, and shares it between the OMP localizer and (via the monitor)
// the drift residualizer. The index reads the matrix's column-major
// storage directly, so no intermediate dense copy is made.
func newSnapshot(version uint64, fp Matrix, grid geom.Grid, search loc.IndexConfig) *Snapshot {
	ix := loc.NewIndexCols(fp.rows, fp.cols, func(j int, dst []float64) {
		copy(dst, fp.ColView(j))
	}, grid.PerStrip, search)
	return &Snapshot{
		version: version,
		fp:      fp,
		ix:      ix,
		omp:     loc.NewOMPPointIndex(ix, grid, loc.OMPConfig{}),
		grid:    grid,
	}
}

// SearchStats are cumulative counters of the candidate-search work a
// snapshot's locate index has performed, for observability and
// benchmarking. ColumnEvals counts full column distance/correlation
// evaluations — the exhaustive reference costs one per fingerprint
// column per search, the pruned and sharded tiers fewer.
type SearchStats struct {
	// Queries is the number of candidate searches answered.
	Queries uint64
	// ColumnEvals is the number of full column evaluations performed.
	ColumnEvals uint64
	// ShardEvals is the number of coarse shard-routing evaluations
	// performed.
	ShardEvals uint64
}

// SearchStats returns the snapshot's cumulative locate-index counters.
// Safe for concurrent use.
func (s *Snapshot) SearchStats() SearchStats {
	st := s.ix.Stats()
	return SearchStats{Queries: st.Queries, ColumnEvals: st.ColumnEvals, ShardEvals: st.ShardEvals}
}

// SearchTier names the snapshot's active candidate-search tier:
// "pruned" (the default), "exact" (WithExactSearch) or "sharded"
// (WithShardedSearch).
func (s *Snapshot) SearchTier() string { return s.ix.Mode().String() }

// Version returns the snapshot's monotonically increasing version number.
// The initial database installed by NewDeployment is version 1.
func (s *Snapshot) Version() uint64 { return s.version }

// Fingerprints returns a copy of the snapshot's fingerprint matrix.
func (s *Snapshot) Fingerprints() Matrix { return s.fp.Clone() }

// Locate estimates the target position for one online RSS vector (one
// averaged reading per link).
func (s *Snapshot) Locate(rss []float64) (Position, error) {
	p, err := s.omp.LocatePoint(rss)
	if err != nil {
		return Position{}, fmt.Errorf("iupdater: %w", err)
	}
	return Position{X: p.X, Y: p.Y}, nil
}

// LocateStats describes the candidate-search work one Locate call
// performed, causally — unlike SearchStats, which aggregates across
// all concurrent queries. Request-scoped traces attach these as span
// attributes.
type LocateStats struct {
	// Version is the snapshot version the query ran against.
	Version uint64
	// Tier is the active search tier ("pruned", "exact", "sharded").
	Tier string
	// ColumnEvals / ShardEvals / ShardsVisited / Rounds are this
	// query's exact counts; see loc.SearchInfo.
	ColumnEvals   uint64
	ShardEvals    uint64
	ShardsVisited int
	Rounds        int
}

// LocateWithStats is Locate returning this query's exact search cost.
// It allocates nothing beyond Locate itself.
func (s *Snapshot) LocateWithStats(rss []float64) (Position, LocateStats, error) {
	var info loc.SearchInfo
	p, err := s.omp.LocatePointInfo(rss, &info)
	st := LocateStats{
		Version:       s.version,
		Tier:          s.ix.Mode().String(),
		ColumnEvals:   info.ColumnEvals,
		ShardEvals:    info.ShardEvals,
		ShardsVisited: info.ShardsVisited,
		Rounds:        info.Rounds,
	}
	if err != nil {
		return Position{}, st, fmt.Errorf("iupdater: %w", err)
	}
	return Position{X: p.X, Y: p.Y}, st, nil
}

// LocateCell estimates the strip-major grid cell index for one online
// RSS vector.
func (s *Snapshot) LocateCell(rss []float64) (int, error) {
	cell, err := s.omp.Locate(rss)
	if err != nil {
		return 0, fmt.Errorf("iupdater: %w", err)
	}
	return cell, nil
}

// LocateMultiple estimates up to maxTargets simultaneous device-free
// targets from one online measurement by successive interference
// cancellation (an extension beyond the paper's single-target
// formulation). Fewer estimates are returned when the measurement does
// not support more.
func (s *Snapshot) LocateMultiple(rss []float64, maxTargets int) ([]Position, error) {
	pts, err := s.omp.LocateMultiple(rss, maxTargets, 0)
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	out := make([]Position, len(pts))
	for i, p := range pts {
		out[i] = Position{X: p.X, Y: p.Y}
	}
	return out, nil
}

// LocateBatch localizes every measurement against this snapshot, fanned
// out over a bounded worker pool. Results are in input order.
func (s *Snapshot) LocateBatch(ctx context.Context, rss [][]float64, workers int) ([]Position, error) {
	pts, err := loc.LocatePoints(ctx, s.omp, rss, workers)
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	out := make([]Position, len(pts))
	for i, p := range pts {
		out[i] = Position{X: p.X, Y: p.Y}
	}
	return out, nil
}

// Deployment is a long-lived fingerprint-localization service for one
// physical deployment. It owns a versioned fingerprint store: every
// Update, Install or initial construction publishes an immutable Snapshot
// swapped in behind an atomic pointer, so localization traffic reads
// lock-free and is never blocked by — and never observes a torn state
// from — a concurrent database refresh.
//
// All methods are safe for concurrent use. The write path (Update,
// Install, Refresh) is serialized internally; the query path (Locate,
// LocateCell, LocateMultiple, LocateBatch, Snapshot) never takes the
// write lock.
//
// Construct with NewDeployment; the zero value is not usable.
type Deployment struct {
	geo  Geometry
	grid geom.Grid
	cfg  config

	snap atomic.Pointer[Snapshot]

	// lat is the cumulative locate-latency histogram (seconds) across
	// every query path and snapshot version; the serve layer labels and
	// exposes it on /metrics.
	lat *obs.Histogram

	// updLat holds the per-stage update-pipeline latency histograms
	// (StageSample..StageSwap). The observations are the very same
	// durations recorded on the stage spans, so /metrics and /traces
	// cannot disagree about where update time went.
	updLat map[string]*obs.Histogram

	// publishes counts snapshots published by this deployment (the
	// initial install is not a publish).
	publishes obs.Counter

	// pubMu guards pubTraces, the bounded version -> publish-trace-ID
	// map that lets /records hand followers the trace that produced the
	// record they are applying.
	pubMu     sync.Mutex
	pubTraces map[uint64]trace.ID

	// mu serializes the write path and guards updater, which holds the
	// reference locations and correlation matrix of the latest Refresh.
	mu      sync.Mutex
	updater *core.Updater

	subMu  sync.Mutex
	subs   map[uint64]chan *Snapshot
	nextID uint64
}

// Update-pipeline stage labels, in pipeline order: reference-point
// measurement, ALS reconstruction, store append+fsync, atomic snapshot
// swap. They are the `stage` label values of the
// iupdater_update_duration_seconds histogram and the span names of the
// corresponding trace spans.
const (
	StageSample      = "sample"
	StageReconstruct = "reconstruct"
	StagePersist     = "persist"
	StageSwap        = "swap"
)

// UpdateStages returns the update-pipeline stage labels in order.
func UpdateStages() []string {
	return []string{StageSample, StageReconstruct, StagePersist, StageSwap}
}

func newUpdateStageHists() map[string]*obs.Histogram {
	m := make(map[string]*obs.Histogram, 4)
	for _, st := range UpdateStages() {
		m[st] = obs.NewHistogram(obs.DefLatencyBuckets...)
	}
	return m
}

// UpdateStageLatency returns the latency histogram (seconds) for one
// update-pipeline stage (StageSample, StageReconstruct, StagePersist
// or StageSwap); nil for unknown stages. Safe for concurrent use.
func (d *Deployment) UpdateStageLatency(stage string) *obs.Histogram { return d.updLat[stage] }

// Publishes returns how many snapshots this deployment has published
// (Update/Install/Rollback/auto-update; the initial database does not
// count).
func (d *Deployment) Publishes() uint64 { return d.publishes.Value() }

// PublishTraceID returns the trace ID of the publish that produced the
// given snapshot version, when that publish was traced and the version
// is recent (a bounded window of recent publishes is remembered).
func (d *Deployment) PublishTraceID(version uint64) (trace.ID, bool) {
	d.pubMu.Lock()
	defer d.pubMu.Unlock()
	id, ok := d.pubTraces[version]
	return id, ok
}

// publishTraceWindow bounds the version -> publish-trace-ID memory.
const publishTraceWindow = 64

func (d *Deployment) recordPublishTrace(version uint64, id trace.ID) {
	d.pubMu.Lock()
	if d.pubTraces == nil {
		d.pubTraces = make(map[uint64]trace.ID, publishTraceWindow)
	}
	d.pubTraces[version] = id
	if version > publishTraceWindow {
		delete(d.pubTraces, version-publishTraceWindow)
	}
	d.pubMu.Unlock()
}

// NewDeployment validates the initial fingerprint database against the
// deployment geometry once, builds the localizer for it, and publishes it
// as snapshot version 1. The update machinery (reference selection and
// correlation acquisition) is initialized lazily on first use, so
// query-only deployments pay nothing for it.
func NewDeployment(fingerprints Matrix, g Geometry, opts ...Option) (*Deployment, error) {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	if g.Links <= 0 || g.PerStrip <= 0 || g.WidthM <= 0 || g.HeightM <= 0 {
		return nil, fmt.Errorf("iupdater: invalid geometry %+v", g)
	}
	if fingerprints.IsZero() {
		return nil, fmt.Errorf("iupdater: empty fingerprint matrix")
	}
	grid := g.grid()
	if r, c := fingerprints.Dims(); r != g.Links || c != grid.NumCells() {
		return nil, fmt.Errorf("iupdater: matrix is %dx%d, want %dx%d", r, c, g.Links, grid.NumCells())
	}
	d := &Deployment{
		geo:    g,
		grid:   grid,
		cfg:    cfg,
		subs:   make(map[uint64]chan *Snapshot),
		lat:    obs.NewHistogram(obs.DefLatencyBuckets...),
		updLat: newUpdateStageHists(),
	}
	// A store that already holds history (a previous deployment life,
	// e.g. before a fresh full survey) keeps the version line monotonic:
	// the new initial snapshot continues after the stored versions.
	version := uint64(1)
	if cfg.store != nil {
		version = cfg.store.LatestVersion() + 1
	}
	snap := newSnapshot(version, fingerprints.Clone(), grid, cfg.search)
	if cfg.store != nil {
		if _, err := cfg.store.appendSnapshot(snap.version, g, snap.fp); err != nil {
			return nil, err
		}
	}
	d.snap.Store(snap)
	return d, nil
}

// newDeploymentAt constructs a writer that continues an existing
// version line: the initial snapshot is published in memory at exactly
// version (not 1), so the next publish becomes version+1. Replica
// promotion uses it to take over a leader's line without a gap.
//
// An attached store that is behind the takeover version is seeded with
// a full snapshot at that version — the handover itself is durable
// before the deployment becomes visible. A store already holding
// versions beyond the takeover point is refused: it records a longer
// history than the one being continued, and appending under it would
// fork the line.
func newDeploymentAt(fingerprints Matrix, g Geometry, version uint64, opts ...Option) (*Deployment, error) {
	if version == 0 {
		return nil, fmt.Errorf("iupdater: cannot continue a version line at version 0")
	}
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	if g.Links <= 0 || g.PerStrip <= 0 || g.WidthM <= 0 || g.HeightM <= 0 {
		return nil, fmt.Errorf("iupdater: invalid geometry %+v", g)
	}
	if fingerprints.IsZero() {
		return nil, fmt.Errorf("iupdater: empty fingerprint matrix")
	}
	grid := g.grid()
	if r, c := fingerprints.Dims(); r != g.Links || c != grid.NumCells() {
		return nil, fmt.Errorf("iupdater: matrix is %dx%d, want %dx%d", r, c, g.Links, grid.NumCells())
	}
	d := &Deployment{
		geo:    g,
		grid:   grid,
		cfg:    cfg,
		subs:   make(map[uint64]chan *Snapshot),
		lat:    obs.NewHistogram(obs.DefLatencyBuckets...),
		updLat: newUpdateStageHists(),
	}
	snap := newSnapshot(version, fingerprints.Clone(), grid, cfg.search)
	if cfg.store != nil {
		if last := cfg.store.LatestVersion(); last > version {
			return nil, fmt.Errorf("iupdater: store already holds version %d, beyond the takeover version %d", last, version)
		} else if last < version {
			if _, err := cfg.store.appendSnapshot(snap.version, g, snap.fp); err != nil {
				return nil, err
			}
		}
	}
	d.snap.Store(snap)
	return d, nil
}

// OpenDeployment warm-starts a Deployment from the latest snapshot in a
// durable store: the fingerprint database, geometry and version number
// are restored exactly as last published, so a restarted process serves
// bit-identical localization without a re-survey. The store stays
// attached — subsequent publishes keep appending to it. Options are
// applied as in NewDeployment (a WithStore option is unnecessary and
// ignored in favor of st).
func OpenDeployment(st *Store, opts ...Option) (*Deployment, error) {
	var cfg config
	for _, opt := range opts {
		opt(&cfg)
	}
	return openDeploymentCfg(st, cfg)
}

// openDeploymentCfg is OpenDeployment with the option set already
// resolved into a config value. The fleet's snapshot LRU rehydrates
// parked sites through it with the exact config their deployment was
// built with, so a re-materialized site serves under identical search
// tiers, workers and tracer wiring.
func openDeploymentCfg(st *Store, cfg config) (*Deployment, error) {
	if st == nil {
		return nil, fmt.Errorf("iupdater: OpenDeployment: nil store")
	}
	version, fp, g, err := st.latestSnapshot()
	if err != nil {
		return nil, err
	}
	cfg.store = st
	if g.Links <= 0 || g.PerStrip <= 0 || g.WidthM <= 0 || g.HeightM <= 0 {
		return nil, fmt.Errorf("iupdater: stored geometry %+v is invalid", g)
	}
	grid := g.grid()
	d := &Deployment{
		geo:    g,
		grid:   grid,
		cfg:    cfg,
		subs:   make(map[uint64]chan *Snapshot),
		lat:    obs.NewHistogram(obs.DefLatencyBuckets...),
		updLat: newUpdateStageHists(),
	}
	// fp was decoded into fresh storage, so no defensive clone is needed.
	d.snap.Store(newSnapshot(version, fp, grid, cfg.search))
	return d, nil
}

// Store returns the attached durable snapshot store, nil for an
// in-memory deployment.
func (d *Deployment) Store() *Store { return d.cfg.store }

// Geometry returns the deployment layout.
func (d *Deployment) Geometry() Geometry { return d.geo }

// Snapshot returns the latest published database version. The load is a
// single atomic pointer read.
func (d *Deployment) Snapshot() *Snapshot { return d.snap.Load() }

// Version returns the latest published snapshot version.
func (d *Deployment) Version() uint64 { return d.snap.Load().version }

// CellCenter returns the position of a grid cell's center in meters.
func (d *Deployment) CellCenter(cell int) Position {
	p := d.grid.Center(cell)
	return Position{X: p.X, Y: p.Y}
}

// buildUpdater runs reference selection and correlation acquisition on
// the given database. It touches no deployment state, so callers can
// swap the result in only on success.
func (d *Deployment) buildUpdater(fp Matrix) (*core.Updater, error) {
	ucfg := core.DefaultUpdaterConfig()
	ucfg.NumReferences = d.cfg.numRefs
	if d.cfg.paperInit {
		ucfg.Reconstruction = []core.Option{core.WithWarmStart(false)}
	}
	if d.cfg.noC1 {
		ucfg.Reconstruction = append(ucfg.Reconstruction, core.WithConstraint1(false))
	}
	if d.cfg.noC2 {
		ucfg.Reconstruction = append(ucfg.Reconstruction, core.WithConstraint2(false))
	}
	if d.cfg.updateConc != 0 {
		ucfg.Reconstruction = append(ucfg.Reconstruction, core.WithConcurrency(d.cfg.updateConc))
	}
	up, err := core.NewUpdater(fingerprint.New(fp.dense(), 0), ucfg)
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	return up, nil
}

// ensureUpdaterLocked builds the core updater from the current snapshot
// if it has not been built yet. d.mu must be held.
func (d *Deployment) ensureUpdaterLocked() error {
	if d.updater != nil {
		return nil
	}
	up, err := d.buildUpdater(d.snap.Load().fp)
	if err != nil {
		return err
	}
	d.updater = up
	return nil
}

// ReferenceLocations returns the location indices (ascending) where fresh
// full-column measurements must be taken for the next Update — the
// maximum independent columns of the database the correlation matrix was
// last learned on.
func (d *Deployment) ReferenceLocations() ([]int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureUpdaterLocked(); err != nil {
		return nil, err
	}
	return d.updater.ReferenceLocations(), nil
}

// Update reconstructs the full fingerprint database from cheap
// measurements and publishes it as a new snapshot:
//
//   - noDecrease: the zero-labor measurements; noDecrease.At(i, j) is link
//     i's fresh target-free reading where known.Known(i, j), ignored
//     elsewhere;
//   - known: the no-decrease index (true = measurable without target);
//   - references: fresh measurements at ReferenceLocations();
//     references.At(i, k) is link i's reading with the target at the k-th
//     reference location.
//
// Localization traffic keeps reading the previous snapshot until the new
// one is swapped in; the returned snapshot is the newly published
// version.
func (d *Deployment) Update(noDecrease Matrix, known Mask, references Matrix) (*Snapshot, error) {
	tr := d.cfg.tracer.Start("update", d.cfg.site)
	defer tr.Finish()
	return d.UpdateTraced(tr, noDecrease, known, references)
}

// UpdateTraced is Update recording its pipeline stages — ALS
// reconstruction, snapshot build/index, store append+fsync, atomic
// swap — as child spans of tr, which the caller owns (serve-mode
// request handlers pass their request trace; the drift monitor passes
// its forced auto-update trace). A nil tr records nothing. The stage
// durations observed into the update-stage histograms are the very
// same values recorded on the spans.
func (d *Deployment) UpdateTraced(tr *trace.Trace, noDecrease Matrix, known Mask, references Matrix) (*Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.ensureUpdaterLocked(); err != nil {
		return nil, err
	}
	cells := d.grid.NumCells()
	if noDecrease.IsZero() {
		return nil, fmt.Errorf("iupdater: no-decrease matrix: empty matrix")
	}
	if r, c := noDecrease.Dims(); r != d.geo.Links || c != cells {
		return nil, fmt.Errorf("iupdater: no-decrease matrix is %dx%d, want %dx%d", r, c, d.geo.Links, cells)
	}
	if known.IsZero() {
		return nil, fmt.Errorf("iupdater: known mask: empty mask")
	}
	if r, c := known.Dims(); r != d.geo.Links || c != cells {
		return nil, fmt.Errorf("iupdater: known mask is %dx%d, want %dx%d", r, c, d.geo.Links, cells)
	}
	refs := d.updater.ReferenceLocations()
	if references.IsZero() {
		return nil, fmt.Errorf("iupdater: reference matrix: empty matrix")
	}
	if r, c := references.Dims(); r != d.geo.Links || c != len(refs) {
		return nil, fmt.Errorf("iupdater: reference matrix is %dx%d, want %dx%d", r, c, d.geo.Links, len(refs))
	}
	mask := known.fingerprintMask()
	// Zero out the unknown entries so B ∘ X̂ = X_B holds exactly.
	xb := mask.Project(noDecrease.dense())
	sp := tr.StartSpan(StageReconstruct)
	t0 := time.Now()
	updated, _, err := d.updater.Update(xb, mask, references.dense(), 0)
	el := time.Since(t0)
	sp.SetInt("links", int64(d.geo.Links))
	sp.SetInt("cells", int64(cells))
	sp.EndDur(el)
	d.updLat[StageReconstruct].Observe(el.Seconds())
	if err != nil {
		return nil, fmt.Errorf("iupdater: %w", err)
	}
	return d.publishLocked(tr, matrixFromDense(updated.X))
}

// Install replaces the database wholesale (e.g. after a fresh full
// survey): it re-runs reference selection and correlation acquisition on
// the new matrix and, only if that succeeds, publishes it as a new
// snapshot. On error no deployment state changes — the previous snapshot
// keeps serving and the previous correlation state keeps updating.
func (d *Deployment) Install(fingerprints Matrix) (*Snapshot, error) {
	tr := d.cfg.tracer.Start("install", d.cfg.site)
	defer tr.Finish()
	d.mu.Lock()
	defer d.mu.Unlock()
	if fingerprints.IsZero() {
		return nil, fmt.Errorf("iupdater: empty fingerprint matrix")
	}
	if r, c := fingerprints.Dims(); r != d.geo.Links || c != d.grid.NumCells() {
		return nil, fmt.Errorf("iupdater: matrix is %dx%d, want %dx%d", r, c, d.geo.Links, d.grid.NumCells())
	}
	fp := fingerprints.Clone()
	up, err := d.buildUpdater(fp)
	if err != nil {
		return nil, err
	}
	snap, err := d.publishLocked(tr, fp)
	if err != nil {
		return nil, err
	}
	d.updater = up
	return snap, nil
}

// Rollback republishes a previously stored snapshot version as the
// latest: the retained version's fingerprints are loaded from the
// attached store, reference selection and correlation acquisition are
// re-run on them (as in Install), and the result is published under the
// next version number — history stays append-only and versions stay
// monotonic, so a rollback is itself a recorded, durable event that a
// later Rollback can undo. Requires a store (WithStore/OpenDeployment);
// versions outside the retention window are an error.
func (d *Deployment) Rollback(version uint64) (*Snapshot, error) {
	tr := d.cfg.tracer.Start("rollback", d.cfg.site)
	defer tr.Finish()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cfg.store == nil {
		return nil, fmt.Errorf("iupdater: Rollback needs a durable store (attach one with WithStore or OpenDeployment)")
	}
	fp, g, err := d.cfg.store.SnapshotAt(version)
	if err != nil {
		return nil, err
	}
	if g != d.geo {
		return nil, fmt.Errorf("iupdater: snapshot v%d was published under geometry %+v, deployment has %+v", version, g, d.geo)
	}
	up, err := d.buildUpdater(fp)
	if err != nil {
		return nil, err
	}
	tr.Root().SetInt("rollback_to", int64(version))
	snap, err := d.publishLocked(tr, fp)
	if err != nil {
		return nil, err
	}
	d.updater = up
	return snap, nil
}

// Refresh re-runs reference selection and correlation acquisition on the
// latest published snapshot, so that subsequent updates track the current
// database state (Fig 10's feedback loop). It does not publish a new
// snapshot, and on error the previous correlation state is kept.
func (d *Deployment) Refresh() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	up, err := d.buildUpdater(d.snap.Load().fp)
	if err != nil {
		return err
	}
	d.updater = up
	return nil
}

// publishLocked stamps the next version, persists it (durability before
// visibility: a failed append publishes nothing; the store decides
// whether the diff against the previous version is worth a delta
// record), swaps the snapshot in and notifies subscribers. d.mu must be
// held.
//
// The three publish stages — snapshot build/index, store append+fsync,
// atomic swap — are recorded as child spans of tr (nil records
// nothing); persist and swap also feed the update-stage histograms
// with the same durations. A traced publish's ID is remembered so
// /records can hand it to followers (see PublishTraceID).
func (d *Deployment) publishLocked(tr *trace.Trace, fp Matrix) (*Snapshot, error) {
	sp := tr.StartSpan("snapshot.build")
	t0 := time.Now()
	snap := newSnapshot(d.snap.Load().version+1, fp, d.grid, d.cfg.search)
	sp.SetInt("version", int64(snap.version))
	sp.End()
	if d.cfg.store != nil {
		sp = tr.StartSpan(StagePersist)
		t0 = time.Now()
		kind, err := d.cfg.store.appendSnapshot(snap.version, d.geo, snap.fp)
		el := time.Since(t0)
		sp.SetStr("record_kind", kind)
		sp.EndDur(el)
		d.updLat[StagePersist].Observe(el.Seconds())
		if err != nil {
			return nil, err
		}
	}
	sp = tr.StartSpan(StageSwap)
	t0 = time.Now()
	d.snap.Store(snap)
	d.subMu.Lock()
	n := len(d.subs)
	for _, ch := range d.subs {
		select {
		case ch <- snap:
		default: // slow subscriber: drop rather than stall the write path
		}
	}
	d.subMu.Unlock()
	el := time.Since(t0)
	sp.SetInt("subscribers", int64(n))
	sp.EndDur(el)
	d.updLat[StageSwap].Observe(el.Seconds())
	d.publishes.Inc()
	if tr != nil {
		d.recordPublishTrace(snap.version, tr.ID())
	}
	return snap, nil
}

// Updates returns a channel receiving every newly published snapshot
// (version rollovers from Update and Install), plus a cancel function
// that unsubscribes and closes the channel. Deliveries to a subscriber
// whose buffer is full are dropped; poll Snapshot for the authoritative
// latest version.
func (d *Deployment) Updates() (<-chan *Snapshot, func()) {
	ch := make(chan *Snapshot, 8)
	d.subMu.Lock()
	id := d.nextID
	d.nextID++
	d.subs[id] = ch
	d.subMu.Unlock()
	cancel := func() {
		d.subMu.Lock()
		if _, ok := d.subs[id]; ok {
			delete(d.subs, id)
			close(ch)
		}
		d.subMu.Unlock()
	}
	return ch, cancel
}

// LocateLatency returns the deployment's cumulative locate-latency
// histogram (seconds): every Locate/LocateCell/LocateMultiple call is
// one observation, a LocateBatch call one per batch. Safe for
// concurrent use; the serve layer exposes it on /metrics.
func (d *Deployment) LocateLatency() *obs.Histogram { return d.lat }

// Locate estimates the target position for one online RSS vector against
// the latest snapshot. With a tracer attached (WithTracer) each call
// records a trace carrying this query's exact search cost; unsampled
// traces cost pooled scratch only — the call stays allocation-free.
func (d *Deployment) Locate(rss []float64) (Position, error) {
	tr := d.cfg.tracer.Start("locate", d.cfg.site)
	start := time.Now()
	snap := d.snap.Load()
	if tr == nil {
		p, err := snap.Locate(rss)
		d.lat.Observe(time.Since(start).Seconds())
		return p, err
	}
	sp := tr.StartSpan("omp.solve")
	p, st, err := snap.LocateWithStats(rss)
	sp.SetStr("tier", st.Tier)
	sp.SetInt("column_evals", int64(st.ColumnEvals))
	sp.SetInt("shard_evals", int64(st.ShardEvals))
	sp.SetInt("shards_visited", int64(st.ShardsVisited))
	sp.SetInt("rounds", int64(st.Rounds))
	sp.End()
	el := time.Since(start)
	d.lat.Observe(el.Seconds())
	root := tr.Root()
	root.SetInt("version", int64(st.Version))
	root.SetBool("error", err != nil)
	root.EndDur(el)
	tr.Finish()
	return p, err
}

// LocateCell estimates the strip-major grid cell index against the latest
// snapshot.
func (d *Deployment) LocateCell(rss []float64) (int, error) {
	start := time.Now()
	cell, err := d.snap.Load().LocateCell(rss)
	d.lat.Observe(time.Since(start).Seconds())
	return cell, err
}

// LocateMultiple estimates up to maxTargets simultaneous targets against
// the latest snapshot.
func (d *Deployment) LocateMultiple(rss []float64, maxTargets int) ([]Position, error) {
	start := time.Now()
	pts, err := d.snap.Load().LocateMultiple(rss, maxTargets)
	d.lat.Observe(time.Since(start).Seconds())
	return pts, err
}

// LocateBatch localizes a batch of online measurements against one
// consistent snapshot (the latest at call time), fanned out over the
// deployment's worker pool (see WithWorkers). Results are in input order;
// the first error or a context cancellation aborts the remaining work.
func (d *Deployment) LocateBatch(ctx context.Context, rss [][]float64) ([]Position, error) {
	start := time.Now()
	pts, err := d.snap.Load().LocateBatch(ctx, rss, d.cfg.workers)
	d.lat.Observe(time.Since(start).Seconds())
	return pts, err
}
