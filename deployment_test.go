package iupdater

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func TestDeploymentValidation(t *testing.T) {
	g := Geometry{WidthM: 12, HeightM: 9, Links: 8, PerStrip: 12}
	if _, err := NewDeployment(Matrix{}, g); err == nil {
		t.Error("zero matrix accepted")
	}
	small, err := NewMatrix(8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDeployment(small, g); err == nil {
		t.Error("shape mismatch accepted")
	}
	ok, err := NewMatrix(8, 96)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDeployment(ok, Geometry{}); err == nil {
		t.Error("zero geometry accepted")
	}
	if _, err := NewMatrix(0, 5); err == nil {
		t.Error("non-positive dimensions accepted")
	}
	if _, err := MatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := MaskFromRows([][]bool{{true}, {true, false}}); err == nil {
		t.Error("ragged mask accepted")
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	m, err := MatrixFromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("dims %dx%d", r, c)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	if got := m.Col(1); got[0] != 2 || got[1] != 5 {
		t.Errorf("Col(1) = %v", got)
	}
	if got := m.ColView(2); got[0] != 3 || got[1] != 6 {
		t.Errorf("ColView(2) = %v", got)
	}
	if got := m.Row(0); got[0] != 1 || got[2] != 3 {
		t.Errorf("Row(0) = %v", got)
	}
	back := m.ToRows()
	for i := range rows {
		for j := range rows[i] {
			if back[i][j] != rows[i][j] {
				t.Fatalf("round trip mismatch at (%d,%d)", i, j)
			}
		}
	}
	// dense round trip preserves values.
	if !matrixFromDense(m.dense()).dense().EqualApprox(m.dense(), 0) {
		t.Error("dense round trip mismatch")
	}
	// Clone isolates storage.
	cl := m.Clone()
	cl.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone shares storage")
	}
}

func TestDeploymentUpdatePublishesVersions(t *testing.T) {
	tb := NewTestbed(Office(), 1)
	d, labor, err := tb.Deploy(0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if labor.Locations != 96 {
		t.Errorf("labor = %+v", labor)
	}
	if v := d.Version(); v != 1 {
		t.Fatalf("initial version = %d", v)
	}
	refs, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 8 {
		t.Fatalf("reference count = %d", len(refs))
	}

	updates, cancel := d.Updates()
	defer cancel()

	original := d.Snapshot().Fingerprints()
	at := 45 * day
	cols, _ := tb.ReferenceMatrix(at, refs)
	snap, err := d.Update(tb.NoDecreaseMatrix(at), tb.Mask(), cols)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 2 || d.Version() != 2 {
		t.Errorf("versions: snapshot %d, deployment %d", snap.Version(), d.Version())
	}
	select {
	case got := <-updates:
		if got.Version() != 2 {
			t.Errorf("subscription delivered v%d", got.Version())
		}
	case <-time.After(time.Second):
		t.Error("no update notification")
	}

	// The refreshed database must be much closer to the current truth
	// than the stale original on the labor-cost entries.
	fresh := snap.Fingerprints()
	truth := tb.TrueMatrix(at)
	known := tb.Mask()
	var errFresh, errStale float64
	var cnt int
	for i := 0; i < truth.Rows(); i++ {
		for j := 0; j < truth.Cols(); j++ {
			if known.Known(i, j) {
				continue
			}
			errFresh += math.Abs(fresh.At(i, j) - truth.At(i, j))
			errStale += math.Abs(original.At(i, j) - truth.At(i, j))
			cnt++
		}
	}
	if errFresh >= errStale {
		t.Errorf("update did not help: fresh %.2f vs stale %.2f", errFresh/float64(cnt), errStale/float64(cnt))
	}

	// Localization against the new snapshot.
	cx, cy := tb.CellCenter(42)
	var sum float64
	const trials = 10
	for k := 0; k < trials; k++ {
		p, err := d.Locate(tb.MeasureOnline(cx, cy, at+time.Duration(k)*time.Minute))
		if err != nil {
			t.Fatal(err)
		}
		sum += math.Hypot(p.X-cx, p.Y-cy)
	}
	if mean := sum / trials; mean > 2.5 {
		t.Errorf("mean localization error %.2f m at a known cell", mean)
	}
}

func TestDeploymentUpdateValidation(t *testing.T) {
	tb := NewTestbed(Office(), 2)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}
	at := 5 * day
	noDec := tb.NoDecreaseMatrix(at)
	mask := tb.Mask()
	cols, _ := tb.ReferenceMatrix(at, refs)

	if _, err := d.Update(Matrix{}, mask, cols); err == nil {
		t.Error("empty no-decrease accepted")
	}
	if _, err := d.Update(noDec, Mask{}, cols); err == nil {
		t.Error("empty mask accepted")
	}
	if _, err := d.Update(noDec, mask, Matrix{}); err == nil {
		t.Error("empty references accepted")
	}
	short, _ := NewMatrix(8, 3)
	if _, err := d.Update(noDec, mask, short); err == nil {
		t.Error("wrong reference count accepted")
	}
	wrong, _ := NewMatrix(4, 96)
	if _, err := d.Update(wrong, mask, cols); err == nil {
		t.Error("wrong no-decrease shape accepted")
	}
	// And a well-formed update still succeeds afterwards.
	if _, err := d.Update(noDec, mask, cols); err != nil {
		t.Fatal(err)
	}
}

func TestDeploymentInstallAndRefresh(t *testing.T) {
	tb := NewTestbed(Office(), 3)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	refs1, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}
	// Install a later resurvey; reference selection must re-run on it.
	resurvey, _ := tb.SurveyMatrix(60*day, 20)
	snap, err := d.Install(resurvey)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version() != 2 {
		t.Errorf("install version = %d", snap.Version())
	}
	refs2, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}
	if len(refs2) != len(refs1) {
		t.Errorf("reference count changed: %d vs %d", len(refs2), len(refs1))
	}
	bad, _ := NewMatrix(2, 2)
	if _, err := d.Install(bad); err == nil {
		t.Error("bad install shape accepted")
	}
	if err := d.Refresh(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotPinning(t *testing.T) {
	tb := NewTestbed(Office(), 4)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	pinned := d.Snapshot()
	refs, err := d.ReferenceLocations()
	if err != nil {
		t.Fatal(err)
	}
	at := 30 * day
	cols, _ := tb.ReferenceMatrix(at, refs)
	if _, err := d.Update(tb.NoDecreaseMatrix(at), tb.Mask(), cols); err != nil {
		t.Fatal(err)
	}
	// The pinned snapshot still serves its original version.
	if pinned.Version() != 1 {
		t.Fatalf("pinned version = %d", pinned.Version())
	}
	cx, cy := tb.CellCenter(10)
	if _, err := pinned.Locate(tb.MeasureOnline(cx, cy, time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.Snapshot().Version() != 2 {
		t.Errorf("latest version = %d", d.Snapshot().Version())
	}
}

func TestLocateBatchMatchesSerial(t *testing.T) {
	tb := NewTestbed(Office(), 5)
	d, _, err := tb.Deploy(0, 20, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	batch := make([][]float64, 32)
	for k := range batch {
		cx, cy := tb.CellCenter(k % tb.NumCells())
		batch[k] = tb.MeasureOnline(cx, cy, time.Duration(k)*time.Minute)
	}
	got, err := d.LocateBatch(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(batch) {
		t.Fatalf("%d results for %d measurements", len(got), len(batch))
	}
	for k, rss := range batch {
		want, err := d.Locate(rss)
		if err != nil {
			t.Fatal(err)
		}
		if got[k] != want {
			t.Fatalf("batch[%d] = %+v, serial = %+v", k, got[k], want)
		}
	}
	// Empty batch is a no-op.
	if out, err := d.LocateBatch(context.Background(), nil); err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v, %v", out, err)
	}
}

func TestLocateBatchErrors(t *testing.T) {
	tb := NewTestbed(Office(), 6)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cx, cy := tb.CellCenter(0)
	rss := tb.MeasureOnline(cx, cy, time.Hour)
	if _, err := d.LocateBatch(ctx, [][]float64{rss}); err == nil {
		t.Error("canceled context accepted")
	}
	// A malformed measurement aborts the batch with an error.
	if _, err := d.LocateBatch(context.Background(), [][]float64{rss, {1, 2}}); err == nil {
		t.Error("short measurement accepted")
	}
}

func TestUpdatesSubscriptionCancel(t *testing.T) {
	tb := NewTestbed(Office(), 7)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := d.Updates()
	cancel()
	if _, ok := <-ch; ok {
		t.Error("channel not closed after cancel")
	}
	cancel() // double-cancel must not panic
	// Publishing after cancel must not panic or block.
	if _, err := d.Install(d.Snapshot().Fingerprints()); err != nil {
		t.Fatal(err)
	}
}

// publishN swaps n fresh snapshots in through the real publish path,
// bypassing the (slow) reconstruction that normally produces them.
func publishN(d *Deployment, n int) {
	fp := d.Snapshot().Fingerprints()
	for i := 0; i < n; i++ {
		d.mu.Lock()
		d.publishLocked(nil, fp.Clone())
		d.mu.Unlock()
	}
}

// TestUpdatesSlowConsumerDropPolicy pins the documented drop policy: a
// subscriber that stops draining buffers up to its channel capacity,
// further publishes are dropped (never blocking the write path), and
// Snapshot still serves the authoritative latest version.
func TestUpdatesSlowConsumerDropPolicy(t *testing.T) {
	tb := NewTestbed(Office(), 7)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := d.Updates()
	defer cancel()
	const published = 20
	buffered := cap(ch)
	publishN(d, published) // the subscriber never reads while these land

	// Exactly the buffer's worth was delivered — the oldest versions, in
	// order — and the rest was dropped.
	var got []uint64
drain:
	for {
		select {
		case snap := <-ch:
			got = append(got, snap.Version())
		default:
			break drain
		}
	}
	if len(got) != buffered {
		t.Fatalf("slow consumer received %d snapshots, want the %d buffered", len(got), buffered)
	}
	for i, v := range got {
		if want := uint64(2 + i); v != want {
			t.Errorf("delivery %d has version %d, want %d", i, v, want)
		}
	}
	// The authoritative latest version is polled from Snapshot, exactly
	// as the drop policy documents.
	if v := d.Version(); v != 1+published {
		t.Fatalf("latest version %d, want %d", v, 1+published)
	}
	// A drained subscriber starts receiving again.
	publishN(d, 1)
	select {
	case snap := <-ch:
		if snap.Version() != uint64(2+published) {
			t.Errorf("post-drain delivery has version %d, want %d", snap.Version(), 2+published)
		}
	default:
		t.Fatal("no delivery after draining")
	}
}

// TestUpdatesUnsubscribeDuringPublish hammers concurrent publishes,
// subscribes and cancels: cancellation mid-publish must never panic
// (send on closed channel), deadlock, or leave a channel open. Run
// under -race this also proves the subscriber map's synchronization.
func TestUpdatesUnsubscribeDuringPublish(t *testing.T) {
	tb := NewTestbed(Office(), 7)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var pubWg, subWg sync.WaitGroup
	pubWg.Add(1)
	go func() { // publisher
		defer pubWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				publishN(d, 1)
			}
		}
	}()
	for w := 0; w < 4; w++ {
		subWg.Add(1)
		go func() { // churning subscribers
			defer subWg.Done()
			for i := 0; i < 200; i++ {
				ch, cancel := d.Updates()
				// Sometimes consume a little, sometimes cancel
				// immediately mid-publish.
				if i%3 == 0 {
					select {
					case <-ch:
					default:
					}
				}
				cancel()
				// Deliveries buffered before cancel closed the channel
				// are still received; drain to the close.
				for range ch {
				}
			}
		}()
	}
	subWg.Wait()
	close(stop)
	pubWg.Wait()
}
