package main

import (
	"os"
	"strings"
	"testing"
)

func TestRunSelectedFigures(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "figgen")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-figs", "20,labor", "-quick"}, f); err != nil {
		t.Fatalf("run: %v", err)
	}
	if _, err := f.Seek(0, 0); err != nil {
		t.Fatal(err)
	}
	out, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{"Fig 20", "Labor savings", "97.9%"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(s, "Fig 21") {
		t.Error("unselected figure rendered")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "figgen")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := run([]string{"-bogus"}, f); err == nil {
		t.Error("bad flag accepted")
	}
}
