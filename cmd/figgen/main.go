// Command figgen regenerates the data behind every table and figure of
// the paper's evaluation section against the simulated testbed.
//
// Usage:
//
//	figgen [-figs all|1,2,5,...] [-seeds n] [-quick]
//
// Output is the text rendering of each experiment: the same series the
// paper plots, recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"iupdater/internal/eval"
	"iupdater/internal/testbed"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "figgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("figgen", flag.ContinueOnError)
	figsFlag := fs.String("figs", "all", "comma-separated figure numbers, or 'all'")
	seedsFlag := fs.Int("seeds", 3, "number of deployment seeds per experiment")
	quick := fs.Bool("quick", false, "single-seed fast pass")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *quick {
		*seedsFlag = 1
	}
	seeds := eval.DefaultSeeds(*seedsFlag)
	office := testbed.Office()

	want := map[string]bool{}
	if *figsFlag == "all" {
		for _, f := range []string{"1", "2", "5", "6", "8", "9", "14", "15", "16", "17", "18", "19", "20", "21", "22", "23", "24", "labor"} {
			want[f] = true
		}
	} else {
		for _, f := range strings.Split(*figsFlag, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	emit := func(id string, f func() (string, error)) error {
		if !want[id] {
			return nil
		}
		start := time.Now()
		s, err := f()
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		fmt.Fprintln(out, s)
		fmt.Fprintf(out, "(generated in %.1f s)\n\n", time.Since(start).Seconds())
		return nil
	}

	steps := []struct {
		id string
		f  func() (string, error)
	}{
		{"1", func() (string, error) { return eval.Fig01ShortTermVariation(office, seeds[0]).Render(), nil }},
		{"2", func() (string, error) { return eval.Fig02LongTermShift(office, seeds[0]).Render(), nil }},
		{"5", func() (string, error) { return eval.Fig05SingularValues(office, seeds[0]).Render(), nil }},
		{"6", func() (string, error) { return eval.Fig06DifferenceStability(office, seeds[0]).Render(), nil }},
		{"8", func() (string, error) { return eval.Fig08NLCCDF(office, seeds[0]).Render(), nil }},
		{"9", func() (string, error) { return eval.Fig09ALSCDF(office, seeds[0]).Render(), nil }},
		{"14", func() (string, error) { r, err := eval.Fig14ReferenceCount(office, seeds); return r.Render(), err }},
		{"15", func() (string, error) {
			r, err := eval.Fig15ReferenceCountOverTime(office, seeds)
			return r.Render(), err
		}},
		{"16", func() (string, error) { r, err := eval.Fig16ConstraintAblation(office, seeds); return r.Render(), err }},
		{"17", func() (string, error) { r, err := eval.Fig17VariationRobustness(office, seeds); return r.Render(), err }},
		{"18", func() (string, error) { r, err := eval.Fig18ReconstructionCDF(office, seeds); return r.Render(), err }},
		{"19", func() (string, error) { r, err := eval.Fig19ReconstructionEnvironments(seeds); return r.Render(), err }},
		{"20", func() (string, error) { return eval.Fig20LaborScaling().Render(), nil }},
		{"21", func() (string, error) { r, err := eval.Fig21LocalizationCDF(office, seeds); return r.Render(), err }},
		{"22", func() (string, error) { r, err := eval.Fig22LocalizationEnvironments(seeds); return r.Render(), err }},
		{"23", func() (string, error) { r, err := eval.Fig23RASSComparison(office, seeds); return r.Render(), err }},
		{"24", func() (string, error) { r, err := eval.Fig24RASSOverTime(office, seeds); return r.Render(), err }},
		{"labor", func() (string, error) { return eval.LaborSavings().Render(), nil }},
	}
	for _, st := range steps {
		if err := emit(st.id, st.f); err != nil {
			return err
		}
	}
	return nil
}
