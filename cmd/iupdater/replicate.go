package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"iupdater"
)

// runReplicate is the follower-only serving mode: it opens one replica
// tailing a leader's records endpoint and serves read-only
// localization from it — the cheap fan-out half of leader/follower
// scale-out. The replica resumes across disconnects on its own; the
// process carries no durable state unless the operator promotes the
// library-level Replica elsewhere.
func runReplicate(args []string) error {
	fs := flag.NewFlagSet("replicate", flag.ExitOnError)
	leader := fs.String("leader", "", "leader records URL (e.g. http://leader:8080/sites/default/records); required")
	name := fs.String("site", "default", "registry name for the replica site")
	addr := fs.String("addr", ":8081", "listen address")
	workers := fs.Int("workers", 0, "batch-locate worker pool size (0 = GOMAXPROCS)")
	wait := fs.Duration("wait", 25*time.Second, "long-poll duration requested from the leader")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *leader == "" {
		return fmt.Errorf("replicate: -leader is required")
	}
	if err := checkSiteName(*name); err != nil {
		return err
	}

	s := newServer(*workers)
	defer s.fleet.Close()
	rep, err := iupdater.OpenReplica(*leader, iupdater.WithReplicaWait(*wait))
	if err != nil {
		return err
	}
	if err := s.addSite(newReplicaSite(*name, rep)); err != nil {
		rep.Close()
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.handler()}
	srv.RegisterOnShutdown(s.cancelDrain)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("replica site %s following %s on %s (POST /locate, GET /snapshot|/sites; writes answer 409)",
		*name, *leader, ln.Addr())
	return serveUntil(ctx, srv, ln, *drainTimeout, func() {
		if err := s.fleet.Close(); err != nil {
			log.Printf("closing fleet: %v", err)
		}
	})
}
