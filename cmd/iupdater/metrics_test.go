package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"iupdater"
)

// postStatus is postJSON without the test dependency, callable from the
// hammer goroutines (t.Fatal must not run off the test goroutine).
func postStatus(url string, body any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// seriesKey identifies a series by name plus sorted labels, optionally
// dropping one label (used to group histogram buckets across le).
func (s promSample) seriesKey(drop string) string {
	keys := make([]string, 0, len(s.labels))
	for k := range s.labels {
		if k != drop {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.name)
	for _, k := range keys {
		fmt.Fprintf(&b, ",%s=%s", k, s.labels[k])
	}
	return b.String()
}

// parseExposition parses Prometheus text format 0.0.4, failing the test
// on any malformed line — undecodable label escapes included.
func parseExposition(t *testing.T, body string) (samples []promSample, help, typ map[string]string) {
	t.Helper()
	help, typ = make(map[string]string), make(map[string]string)
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, text, found := strings.Cut(rest, " ")
			if !found || name == "" {
				t.Fatalf("line %d: malformed HELP: %q", ln+1, line)
			}
			if _, dup := help[name]; dup {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			help[name] = text
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, found := strings.Cut(rest, " ")
			if !found || name == "" {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := typ[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		samples = append(samples, parseSampleLine(t, ln+1, line))
	}
	return samples, help, typ
}

func parseSampleLine(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: make(map[string]string)}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		t.Fatalf("line %d: no value separator: %q", ln, line)
	} else {
		s.name = rest[:i]
		if rest[i] == '{' {
			rest = rest[i+1:]
			for {
				eq := strings.IndexByte(rest, '=')
				if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
					t.Fatalf("line %d: malformed label in %q", ln, line)
				}
				name := rest[:eq]
				rest = rest[eq+2:]
				var val strings.Builder
				for {
					if rest == "" {
						t.Fatalf("line %d: unterminated label value in %q", ln, line)
					}
					c := rest[0]
					if c == '"' {
						rest = rest[1:]
						break
					}
					if c == '\\' {
						if len(rest) < 2 {
							t.Fatalf("line %d: dangling escape in %q", ln, line)
						}
						switch rest[1] {
						case '\\':
							val.WriteByte('\\')
						case '"':
							val.WriteByte('"')
						case 'n':
							val.WriteByte('\n')
						default:
							t.Fatalf("line %d: invalid escape \\%c in %q", ln, rest[1], line)
						}
						rest = rest[2:]
						continue
					}
					val.WriteByte(c)
					rest = rest[1:]
				}
				s.labels[name] = val.String()
				if strings.HasPrefix(rest, ",") {
					rest = rest[1:]
					continue
				}
				if strings.HasPrefix(rest, "}") {
					rest = rest[1:]
					break
				}
				t.Fatalf("line %d: malformed label list in %q", ln, line)
			}
		} else {
			rest = rest[i:]
		}
	}
	rest = strings.TrimPrefix(rest, " ")
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		t.Fatalf("line %d: value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// lintExposition enforces the format invariants a Prometheus scraper
// relies on: every sample belongs to a family with exactly one HELP and
// one valid TYPE, histogram bucket series are cumulative with a closing
// +Inf bucket that equals _count and come with a _sum, counters never
// go negative, and no series appears twice.
func lintExposition(t *testing.T, body string) (samples []promSample, typ map[string]string) {
	t.Helper()
	samples, help, typs := parseExposition(t, body)
	// family resolves a sample name back to its declared family,
	// stripping the histogram suffixes.
	family := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suf); ok && typs[base] == "histogram" {
				return base
			}
		}
		return name
	}
	for name, kind := range typs {
		if kind != "counter" && kind != "gauge" && kind != "histogram" {
			t.Errorf("family %s: invalid TYPE %q", name, kind)
		}
		if _, ok := help[name]; !ok {
			t.Errorf("family %s: TYPE without HELP", name)
		}
	}
	for name := range help {
		if _, ok := typs[name]; !ok {
			t.Errorf("family %s: HELP without TYPE", name)
		}
	}
	seen := make(map[string]bool)
	for _, s := range samples {
		fam := family(s.name)
		if _, ok := typs[fam]; !ok {
			t.Errorf("sample %s: no TYPE declared for family %s", s.name, fam)
		}
		if typs[fam] == "counter" && s.value < 0 {
			t.Errorf("counter %s: negative value %g", s.name, s.value)
		}
		key := s.seriesKey("")
		if seen[key] {
			t.Errorf("duplicate series %s", key)
		}
		seen[key] = true
	}
	// Histogram invariants, per bucket series (same labels minus le).
	buckets := make(map[string][]promSample)
	scalars := make(map[string]float64)
	for _, s := range samples {
		fam := family(s.name)
		if typs[fam] != "histogram" {
			continue
		}
		if strings.HasSuffix(s.name, "_bucket") {
			buckets[s.seriesKey("le")] = append(buckets[s.seriesKey("le")], s)
		} else {
			scalars[s.seriesKey("")] = s.value
		}
	}
	for key, bs := range buckets {
		prevLe := math.Inf(-1)
		prevCum := -1.0
		for _, b := range bs {
			leStr, ok := b.labels["le"]
			if !ok {
				t.Fatalf("series %s: bucket without le label", key)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("series %s: le %q: %v", key, leStr, err)
			}
			if le <= prevLe {
				t.Errorf("series %s: le %g out of order after %g", key, le, prevLe)
			}
			if b.value < prevCum {
				t.Errorf("series %s: bucket le=%g count %g below previous %g (not cumulative)", key, le, b.value, prevCum)
			}
			prevLe, prevCum = le, b.value
		}
		if !math.IsInf(prevLe, 1) {
			t.Errorf("series %s: no +Inf bucket", key)
		}
		// The series key is "<name>_bucket,<labels>"; swap the suffix to
		// find the matching _count and _sum series.
		base := strings.TrimSuffix(bs[0].name, "_bucket")
		labelPart := strings.TrimPrefix(key, bs[0].name)
		count, ok := scalars[base+"_count"+labelPart]
		if !ok {
			t.Errorf("series %s: missing _count", key)
		} else if count != prevCum {
			t.Errorf("series %s: +Inf bucket %g != _count %g", key, prevCum, count)
		}
		if _, ok := scalars[base+"_sum"+labelPart]; !ok {
			t.Errorf("series %s: missing _sum", key)
		}
	}
	return samples, typs
}

// metricFamilies is the catalog GET /metrics must expose for the fleet
// (doc.go "Observability" section); the lint asserts presence of every
// family even when a site contributes no sample to it.
var metricFamilies = []string{
	"iupdater_locate_latency_seconds",
	"iupdater_snapshot_version",
	"iupdater_search_queries_total",
	"iupdater_search_column_evals_total",
	"iupdater_search_shard_evals_total",
	"iupdater_drift_residual_db",
	"iupdater_drift_score",
	"iupdater_drift_cooldown_remaining",
	"iupdater_drift_queries_total",
	"iupdater_drift_detections_total",
	"iupdater_drift_updates_triggered_total",
	"iupdater_drift_updates_completed_total",
	"iupdater_drift_update_errors_total",
	"iupdater_drift_detections_suppressed_total",
	"iupdater_drift_link_error_db",
	"iupdater_store_bytes",
	"iupdater_store_records",
	"iupdater_store_compactions_total",
	"iupdater_sites",
	"iupdater_site_evictions_total",
	"iupdater_site_rehydrations_total",
	"iupdater_site_rehydration_seconds",
	"iupdater_replica_applied_version",
	"iupdater_replica_leader_version",
	"iupdater_replica_lag_versions",
	"iupdater_replica_reconnects_total",
	"iupdater_replica_rebootstraps_total",
	"iupdater_update_duration_seconds",
	"iupdater_publish_total",
	"iupdater_traces_started_total",
	"iupdater_traces_retained_total",
	"iupdater_traces_slow_total",
	"iupdater_build_info",
	"iupdater_goroutines",
	"iupdater_heap_bytes",
	"iupdater_gc_pause_seconds_total",
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("GET /metrics: Content-Type %q, want text format 0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// findSample returns the first sample matching name and the given
// label subset.
func findSample(samples []promSample, name string, labels map[string]string) (promSample, bool) {
	for _, s := range samples {
		if s.name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if s.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return promSample{}, false
}

// TestServeMetricsExposition drives a two-site fleet (one monitored)
// through locates and an update, then scrapes /metrics and verifies the
// exposition is well-formed and covers every catalog family, with the
// expected per-site samples.
func TestServeMetricsExposition(t *testing.T) {
	def := newOfficeSite(t, "default", 1)
	if err := def.enableMonitor(iupdater.WithSynchronousUpdates()); err != nil {
		t.Fatal(err)
	}
	annex := newOfficeSite(t, "annex", 2)
	s := newServer(0)
	for _, st := range []*site{def, annex} {
		if err := s.addSite(st); err != nil {
			t.Fatal(err)
		}
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	cx, cy := def.tb.CellCenter(13)
	rss := def.tb.MeasureOnline(cx, cy, time.Hour)
	for i := 0; i < 5; i++ {
		if code := postJSON(t, ts.URL+"/sites/default/locate", locateRequest{RSS: rss}, nil); code != http.StatusOK {
			t.Fatalf("locate status %d", code)
		}
	}
	if code := postJSON(t, ts.URL+"/sites/annex/locate", locateRequest{RSS: rss}, nil); code != http.StatusOK {
		t.Fatalf("annex locate status %d", code)
	}
	if code := postJSON(t, ts.URL+"/sites/default/update", updateRequest{Days: 30}, nil); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}

	samples, typs := lintExposition(t, scrapeMetrics(t, ts.URL))
	for _, fam := range metricFamilies {
		if _, ok := typs[fam]; !ok {
			t.Errorf("family %s missing from exposition", fam)
		}
	}

	for _, name := range []string{"default", "annex"} {
		lbl := map[string]string{"site": name}
		if s, ok := findSample(samples, "iupdater_locate_latency_seconds_count", lbl); !ok || s.value < 1 {
			t.Errorf("site %s: locate latency count %v (found %v), want >= 1", name, s.value, ok)
		}
		if _, ok := findSample(samples, "iupdater_snapshot_version", lbl); !ok {
			t.Errorf("site %s: no snapshot version sample", name)
		}
		if s, ok := findSample(samples, "iupdater_search_queries_total", lbl); !ok || s.labels["tier"] != "pruned" {
			t.Errorf("site %s: search queries sample %+v (found %v), want tier=pruned", name, s, ok)
		}
	}
	if s, ok := findSample(samples, "iupdater_snapshot_version", map[string]string{"site": "default"}); !ok || s.value != 2 {
		t.Errorf("default snapshot version %v (found %v), want 2 after the update", s.value, ok)
	}
	// Drift families sample only the monitored site.
	if s, ok := findSample(samples, "iupdater_drift_cooldown_remaining", map[string]string{"site": "default"}); !ok || s.value < 0 {
		t.Errorf("default cooldown sample %v (found %v)", s.value, ok)
	}
	if _, ok := findSample(samples, "iupdater_drift_queries_total", map[string]string{"site": "annex"}); ok {
		t.Errorf("unmonitored annex has drift samples")
	}
	// In-memory sites carry no store samples, but the families stay
	// declared (checked above).
	if _, ok := findSample(samples, "iupdater_store_bytes", nil); ok {
		t.Errorf("in-memory fleet has store samples")
	}
	// Fleet lifecycle families: both sites resident, nothing parked and
	// no LRU churn in this in-memory fleet.
	if s, ok := findSample(samples, "iupdater_sites", map[string]string{"state": "resident"}); !ok || s.value != 2 {
		t.Errorf("resident sites %v (found %v), want 2", s.value, ok)
	}
	if s, ok := findSample(samples, "iupdater_sites", map[string]string{"state": "parked"}); !ok || s.value != 0 {
		t.Errorf("parked sites %v (found %v), want 0", s.value, ok)
	}
	if s, ok := findSample(samples, "iupdater_site_evictions_total", nil); !ok || s.value != 0 {
		t.Errorf("evictions %v (found %v), want 0", s.value, ok)
	}
	if s, ok := findSample(samples, "iupdater_site_rehydration_seconds_count", nil); !ok || s.value != 0 {
		t.Errorf("rehydration count %v (found %v), want 0", s.value, ok)
	}
}

// TestServeMetricsUnderHammer scrapes /metrics in a loop while both
// sites take concurrent locate traffic and one takes updates — the
// update-while-locate pattern — and lints every scrape. Run under
// -race this also proves the handler's metric reads do not race the
// hot-path writers.
func TestServeMetricsUnderHammer(t *testing.T) {
	def := newOfficeSite(t, "default", 1)
	annex := newOfficeSite(t, "annex", 2)
	s := newServer(0)
	for _, st := range []*site{def, annex} {
		if err := s.addSite(st); err != nil {
			t.Fatal(err)
		}
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	cx, cy := def.tb.CellCenter(13)
	rss := def.tb.MeasureOnline(cx, cy, time.Hour)
	var stop atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for _, path := range []string{"/sites/default/locate", "/sites/annex/locate"} {
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for !stop.Load() {
					code, err := postStatus(ts.URL+path, locateRequest{RSS: rss})
					if err != nil || code != http.StatusOK {
						errc <- fmt.Errorf("POST %s: status %d, err %v", path, code, err)
						return
					}
				}
			}(path)
		}
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for u := 1; u <= 3; u++ {
			code, err := postStatus(ts.URL+"/sites/default/update", updateRequest{Days: float64(10 * u)})
			if err != nil || code != http.StatusOK {
				errc <- fmt.Errorf("update %d: status %d, err %v", u, code, err)
				return
			}
		}
	}()

	deadline := time.Now().Add(20 * time.Second)
	var scrapes int
	for def.deployment().Version() != 4 && time.Now().Before(deadline) {
		lintExposition(t, scrapeMetrics(t, ts.URL))
		scrapes++
	}
	stop.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if v := def.deployment().Version(); v != 4 {
		t.Fatalf("default version %d after hammer, want 4", v)
	}
	if scrapes == 0 {
		t.Fatal("no scrapes completed during the hammer")
	}
	// One last quiet scrape: locate counts must reflect the traffic.
	samples, _ := lintExposition(t, scrapeMetrics(t, ts.URL))
	for _, name := range []string{"default", "annex"} {
		if s, ok := findSample(samples, "iupdater_locate_latency_seconds_count", map[string]string{"site": name}); !ok || s.value < 1 {
			t.Errorf("site %s: latency count %v (found %v) after hammer", name, s.value, ok)
		}
	}
}
