package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"iupdater"
)

// newOfficeSite deploys one office-testbed site for handler tests.
func newOfficeSite(t *testing.T, name string, seed uint64) *site {
	t.Helper()
	tb := iupdater.NewTestbed(iupdater.Office(), seed)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	return newSite(name, d, tb)
}

func newTestServer(t *testing.T) (*httptest.Server, *iupdater.Testbed) {
	t.Helper()
	st := newOfficeSite(t, "default", 1)
	s := newServer(0)
	if err := s.addSite(st); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts, st.tb
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestServeLocate(t *testing.T) {
	ts, tb := newTestServer(t)
	cx, cy := tb.CellCenter(42)
	rss := tb.MeasureOnline(cx, cy, time.Hour)

	var resp locateResponse
	if code := postJSON(t, ts.URL+"/locate", locateRequest{RSS: rss}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Version != 1 || resp.Position == nil {
		t.Fatalf("response %+v", resp)
	}
	if dx, dy := resp.Position.X-cx, resp.Position.Y-cy; dx*dx+dy*dy > 25 {
		t.Errorf("estimate (%.1f, %.1f) far from (%.1f, %.1f)", resp.Position.X, resp.Position.Y, cx, cy)
	}

	// Batch form.
	var batchResp locateResponse
	batch := [][]float64{rss, tb.MeasureOnline(cx, cy, 2*time.Hour)}
	if code := postJSON(t, ts.URL+"/locate", locateRequest{Batch: batch}, &batchResp); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(batchResp.Positions) != 2 {
		t.Fatalf("batch response %+v", batchResp)
	}

	// The per-site route addresses the same default deployment.
	var siteResp locateResponse
	if code := postJSON(t, ts.URL+"/sites/default/locate", locateRequest{RSS: rss}, &siteResp); code != http.StatusOK {
		t.Fatalf("per-site status %d", code)
	}
	if siteResp.Position == nil || *siteResp.Position != *resp.Position {
		t.Errorf("per-site estimate %+v != alias estimate %+v", siteResp.Position, resp.Position)
	}

	// Malformed requests.
	if code := postJSON(t, ts.URL+"/locate", locateRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty request: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/locate", locateRequest{RSS: []float64{1}}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("short rss: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/sites/nowhere/locate", locateRequest{RSS: rss}, nil); code != http.StatusNotFound {
		t.Errorf("unknown site: status %d", code)
	}
}

func TestServeUpdateAndSnapshot(t *testing.T) {
	ts, _ := newTestServer(t)

	var up updateResponse
	if code := postJSON(t, ts.URL+"/update", updateRequest{Days: 30}, &up); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if up.Version != 2 || len(up.References) == 0 {
		t.Fatalf("update response %+v", up)
	}

	var snap snapshotResponse
	if code := getJSON(t, ts.URL+"/snapshot", &snap); code != http.StatusOK {
		t.Fatalf("snapshot status %d", code)
	}
	if snap.Version != 2 || snap.Links != 8 || snap.Cells != 96 {
		t.Fatalf("snapshot header %+v", snap)
	}
	if len(snap.Fingerprints) != snap.Links || len(snap.Fingerprints[0]) != snap.Cells {
		t.Fatalf("snapshot matrix %dx%d", len(snap.Fingerprints), len(snap.Fingerprints[0]))
	}

	if code := postJSON(t, ts.URL+"/update", updateRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty update: status %d", code)
	}
}

func TestServeRawUpdate(t *testing.T) {
	ts, tb := newTestServer(t)

	// First ask the server which reference locations it wants.
	var up updateResponse
	if code := postJSON(t, ts.URL+"/update", updateRequest{Days: 1}, &up); code != http.StatusOK {
		t.Fatalf("probe update status %d", code)
	}

	at := 45 * 24 * time.Hour
	cols, _ := tb.ReferenceMatrix(at, up.References)
	req := updateRequest{
		NoDecrease: tb.NoDecreaseMatrix(at).ToRows(),
		Known:      tb.Mask().ToRows(),
		References: cols.ToRows(),
	}
	var raw updateResponse
	if code := postJSON(t, ts.URL+"/update", req, &raw); code != http.StatusOK {
		t.Fatalf("raw update status %d", code)
	}
	if raw.Version != 3 {
		t.Errorf("raw update version %d", raw.Version)
	}
}

// TestServeMethodNotAllowed asserts every route answers a wrong-method
// hit with an explicit 405, an Allow header and the API's JSON error
// shape — not a 404 or the mux's implicit plain-text handling.
func TestServeMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodGet, "/locate", "POST"},
		{http.MethodDelete, "/update", "POST"},
		{http.MethodPost, "/snapshot", "GET"},
		{http.MethodPut, "/drift", "GET"},
		{http.MethodGet, "/rollback", "POST"},
		{http.MethodPost, "/sites", "GET"},
		// The site lifecycle routes share one pattern; a wrong-method hit
		// must advertise every supported method.
		{http.MethodPost, "/sites/default", "GET, PUT, DELETE"},
		{http.MethodPatch, "/sites/default", "GET, PUT, DELETE"},
		{http.MethodPost, "/sites/nosuch", "GET, PUT, DELETE"},
		{http.MethodGet, "/sites/default/locate", "POST"},
		{http.MethodDelete, "/sites/default/update", "POST"},
		{http.MethodPost, "/sites/default/snapshot", "GET"},
		{http.MethodPost, "/sites/default/drift", "GET"},
		{http.MethodGet, "/sites/default/rollback", "POST"},
		{http.MethodPost, "/records", "GET"},
		{http.MethodDelete, "/sites/default/records", "GET"},
		{http.MethodPost, "/metrics", "GET"},
		{http.MethodPost, "/healthz", "GET"},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: status %d, want 405", tc.method, tc.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != tc.allow {
			t.Errorf("%s %s: Allow %q, want %q", tc.method, tc.path, allow, tc.allow)
		}
		var body map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || body["error"] == "" {
			t.Errorf("%s %s: want a JSON error body, got decode err %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
	}
}

// TestServeFleetRoutes drives two durable sites through the fleet
// surface: listing, per-site update/drift, and a rollback whose effect
// is observable through /sites/{name}/snapshot.
func TestServeFleetRoutes(t *testing.T) {
	dataDir := t.TempDir()
	s := newServer(0)
	for i, name := range []string{"hq", "annex"} {
		st, warm, err := buildSite(siteSpec{name: name, env: "office"}, uint64(30+i), dataDir, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if warm {
			t.Fatalf("site %s warm-started from an empty directory", name)
		}
		if err := st.enableMonitor(); err != nil {
			t.Fatal(err)
		}
		if err := s.addSite(st); err != nil {
			t.Fatal(err)
		}
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	var sites sitesResponse
	if code := getJSON(t, ts.URL+"/sites", &sites); code != http.StatusOK {
		t.Fatalf("/sites status %d", code)
	}
	if len(sites.Sites) != 2 || sites.Sites[0].Name != "annex" || sites.Sites[1].Name != "hq" {
		t.Fatalf("/sites = %+v", sites.Sites)
	}
	for _, sum := range sites.Sites {
		if !sum.Durable || sum.Drift == nil || len(sum.StoredVersions) != 1 {
			t.Errorf("site %s summary %+v: want durable, monitored, 1 stored version", sum.Name, sum)
		}
	}

	// Update only the annex: versions diverge per site.
	var up updateResponse
	if code := postJSON(t, ts.URL+"/sites/annex/update", updateRequest{Days: 30}, &up); code != http.StatusOK {
		t.Fatalf("annex update status %d", code)
	}
	if up.Version != 2 {
		t.Fatalf("annex update -> v%d", up.Version)
	}
	var annex, hq siteSummaryJSON
	if code := getJSON(t, ts.URL+"/sites/annex", &annex); code != http.StatusOK {
		t.Fatalf("/sites/annex status %d", code)
	}
	if code := getJSON(t, ts.URL+"/sites/hq", &hq); code != http.StatusOK {
		t.Fatalf("/sites/hq status %d", code)
	}
	if annex.Version != 2 || hq.Version != 1 {
		t.Fatalf("annex v%d hq v%d, want 2 and 1", annex.Version, hq.Version)
	}
	if len(annex.StoredVersions) != 2 {
		t.Fatalf("annex stored versions %v", annex.StoredVersions)
	}

	// Per-site drift endpoints are live and independent.
	var dr driftResponse
	if code := getJSON(t, ts.URL+"/sites/hq/drift", &dr); code != http.StatusOK {
		t.Fatalf("/sites/hq/drift status %d", code)
	}
	if dr.Version != 1 {
		t.Errorf("hq drift tracks v%d, want 1", dr.Version)
	}

	// Snapshot before rollback, then roll the annex back to v1 and
	// observe the change through the snapshot route.
	var v1snap snapshotResponse
	if code := getJSON(t, ts.URL+"/sites/hq/snapshot", &v1snap); code != http.StatusOK {
		t.Fatalf("hq snapshot status %d", code)
	}
	var v2snap snapshotResponse
	if code := getJSON(t, ts.URL+"/sites/annex/snapshot", &v2snap); code != http.StatusOK {
		t.Fatalf("annex snapshot status %d", code)
	}
	var rb rollbackResponse
	if code := postJSON(t, ts.URL+"/sites/annex/rollback?version=1", nil, &rb); code != http.StatusOK {
		t.Fatalf("rollback status %d", code)
	}
	if rb.Version != 3 || rb.RestoredVersion != 1 {
		t.Fatalf("rollback response %+v", rb)
	}
	var v3snap snapshotResponse
	if code := getJSON(t, ts.URL+"/sites/annex/snapshot", &v3snap); code != http.StatusOK {
		t.Fatalf("post-rollback snapshot status %d", code)
	}
	if v3snap.Version != 3 {
		t.Fatalf("post-rollback snapshot v%d, want 3", v3snap.Version)
	}
	if v3snap.Fingerprints[0][0] == v2snap.Fingerprints[0][0] {
		t.Error("rollback left the updated fingerprints in place")
	}

	// Rollback error paths.
	if code := postJSON(t, ts.URL+"/sites/annex/rollback", nil, nil); code != http.StatusBadRequest {
		t.Errorf("rollback without version: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/sites/annex/rollback?version=zig", nil, nil); code != http.StatusBadRequest {
		t.Errorf("rollback with junk version: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/sites/annex/rollback?version=99", nil, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("rollback to missing version: status %d", code)
	}
}

// TestServeWarmRestart proves the -data-dir round trip at the serve
// layer: a site built once persists, and a second buildSite for the
// same directory warm-starts at the same version with bit-identical
// localization instead of re-surveying.
func TestServeWarmRestart(t *testing.T) {
	dataDir := t.TempDir()
	spec := siteSpec{name: "default", env: "office"}
	st1, warm, err := buildSite(spec, 5, dataDir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Fatal("first build claims warm restart")
	}
	s1 := newServer(0)
	if err := s1.addSite(st1); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.handler())
	var up updateResponse
	if code := postJSON(t, ts1.URL+"/update", updateRequest{Days: 20}, &up); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	cx, cy := st1.tb.CellCenter(31)
	probe := st1.tb.MeasureOnline(cx, cy, 20*24*time.Hour)
	var before locateResponse
	if code := postJSON(t, ts1.URL+"/locate", locateRequest{RSS: probe}, &before); code != http.StatusOK {
		t.Fatalf("locate status %d", code)
	}
	ts1.Close()
	if err := s1.fleet.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart the process": rebuild the site from the same data dir.
	st2, warm, err := buildSite(spec, 5, dataDir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Fatal("second build did not warm-start")
	}
	s2 := newServer(0)
	if err := s2.addSite(st2); err != nil {
		t.Fatal(err)
	}
	defer s2.fleet.Close()
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()
	var after locateResponse
	if code := postJSON(t, ts2.URL+"/locate", locateRequest{RSS: probe}, &after); code != http.StatusOK {
		t.Fatalf("post-restart locate status %d", code)
	}
	if after.Version != before.Version || *after.Position != *before.Position {
		t.Fatalf("post-restart locate %+v != pre-restart %+v", after, before)
	}
}

func TestParseSiteSpecs(t *testing.T) {
	specs, err := parseSiteSpecs("", "office")
	if err != nil || len(specs) != 1 || specs[0] != (siteSpec{name: "default", env: "office"}) {
		t.Fatalf("default spec = %+v, err %v", specs, err)
	}
	specs, err = parseSiteSpecs("hq=office, annex=library,spare", "hall")
	if err != nil || len(specs) != 3 {
		t.Fatalf("specs = %+v, err %v", specs, err)
	}
	if specs[1] != (siteSpec{name: "annex", env: "library"}) || specs[2] != (siteSpec{name: "spare", env: "hall"}) {
		t.Fatalf("specs = %+v", specs)
	}
	if _, err := parseSiteSpecs("a=office,a=library", "office"); err == nil {
		t.Error("duplicate site accepted")
	}
	if _, err := parseSiteSpecs("=office", "office"); err == nil {
		t.Error("empty site name accepted")
	}
}

func TestServeDriftEndpointAndMonitorFeed(t *testing.T) {
	st := newOfficeSite(t, "default", 1)
	// Without -monitor the endpoint reports 404.
	sOff := newServer(0)
	if err := sOff.addSite(st); err != nil {
		t.Fatal(err)
	}
	off := httptest.NewServer(sOff.handler())
	defer off.Close()
	if code := getJSON(t, off.URL+"/drift", nil); code != http.StatusNotFound {
		t.Errorf("/drift without -monitor: status %d, want 404", code)
	}

	st2 := newOfficeSite(t, "default", 1)
	if err := st2.enableMonitor(); err != nil {
		t.Fatal(err)
	}
	defer st2.monitor().Close()
	sOn := newServer(0)
	if err := sOn.addSite(st2); err != nil {
		t.Fatal(err)
	}
	on := httptest.NewServer(sOn.handler())
	defer on.Close()

	// Served locate traffic must feed the monitor: single and batch.
	cx, cy := st2.tb.CellCenter(10)
	rss := st2.tb.MeasureOnline(cx, cy, time.Hour)
	if code := postJSON(t, on.URL+"/locate", locateRequest{RSS: rss}, nil); code != http.StatusOK {
		t.Fatalf("locate status %d", code)
	}
	batch := [][]float64{rss, st2.tb.MeasureOnline(cx, cy, time.Hour+time.Minute)}
	if code := postJSON(t, on.URL+"/locate", locateRequest{Batch: batch}, nil); code != http.StatusOK {
		t.Fatalf("batch locate status %d", code)
	}

	var dr driftResponse
	if code := getJSON(t, on.URL+"/drift", &dr); code != http.StatusOK {
		t.Fatalf("/drift status %d", code)
	}
	if dr.Queries != 3 {
		t.Errorf("monitor observed %d queries, want 3 (1 single + 2 batch)", dr.Queries)
	}
	if dr.Version != 1 || dr.Detections != 0 {
		t.Errorf("unexpected drift stats %+v", dr)
	}
	if dr.Residual <= 0 {
		t.Errorf("residual %.3f, want > 0", dr.Residual)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	st := newOfficeSite(t, "default", 1)
	if err := st.enableMonitor(); err != nil {
		t.Fatal(err)
	}
	s := newServer(0)
	if err := s.addSite(st); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.handler()}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	cleaned := make(chan struct{})
	go func() {
		done <- serveUntil(ctx, srv, ln, 5*time.Second, func() {
			st.monitor().Close()
			close(cleaned)
		})
	}()

	// The server must actually be serving before we shut it down.
	url := "http://" + ln.Addr().String()
	cx, cy := st.tb.CellCenter(5)
	rss := st.tb.MeasureOnline(cx, cy, time.Hour)
	if code := postJSON(t, url+"/locate", locateRequest{RSS: rss}, nil); code != http.StatusOK {
		t.Fatalf("pre-shutdown locate status %d", code)
	}

	cancel() // stands in for SIGINT/SIGTERM via signal.NotifyContext
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntil returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntil did not return after cancellation")
	}
	select {
	case <-cleaned:
	default:
		t.Fatal("cleanup did not run before serveUntil returned")
	}
	// The monitor is stopped: further observations must be rejected.
	if err := st.monitor().Observe(rss); err == nil {
		t.Error("monitor still accepting observations after shutdown")
	}
	// And the listener is really closed.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}

func TestServePprofGating(t *testing.T) {
	// The profiling endpoints must be absent by default and present only
	// when the -pprof flag enables them.
	s := newServer(0)
	if err := s.addSite(newOfficeSite(t, "default", 1)); err != nil {
		t.Fatal(err)
	}
	off := httptest.NewServer(s.handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable without -pprof: status %d", resp.StatusCode)
	}

	s.pprof = true
	on := httptest.NewServer(s.handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index with -pprof: status %d, want 200", resp.StatusCode)
	}
}

func TestParseSiteSpecsRejectsUnsafeNames(t *testing.T) {
	// Names become -data-dir subdirectories and URL path segments; they
	// must be rejected before buildSite touches the filesystem.
	for _, bad := range []string{"..", "a/b", "a.b", "..=office", "evil/../../x=office"} {
		if _, err := parseSiteSpecs(bad, "office"); err == nil {
			t.Errorf("unsafe -sites spec %q accepted", bad)
		}
	}
}

// TestServeRollbackCompactedVersionIsClientError: rolling back to a
// version the store has compacted away is the client's mistake, so the
// route must answer with a 4xx carrying the store's "not retained"
// message — never a 500.
func TestServeRollbackCompactedVersionIsClientError(t *testing.T) {
	s := newServer(0)
	st, _, err := buildSite(siteSpec{name: "default", env: "office"}, 9, t.TempDir(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.addSite(st); err != nil {
		t.Fatal(err)
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Three updates publish v2..v4; with -retain 2 the store compacts
	// down to [3 4], so v1 leaves the rollback window.
	for days := 10; days <= 30; days += 10 {
		if code := postJSON(t, ts.URL+"/update", updateRequest{Days: float64(days)}, nil); code != http.StatusOK {
			t.Fatalf("update(%dd) status %d", days, code)
		}
	}
	var sum siteSummaryJSON
	if code := getJSON(t, ts.URL+"/sites/default", &sum); code != http.StatusOK {
		t.Fatalf("summary status %d", code)
	}
	if len(sum.StoredVersions) == 0 || sum.StoredVersions[0] == 1 {
		t.Fatalf("stored versions %v: v1 was not compacted away", sum.StoredVersions)
	}

	resp, err := http.Post(ts.URL+"/rollback?version=1", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 400 || resp.StatusCode >= 500 {
		t.Fatalf("rollback to compacted version: status %d, want a 4xx", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(body["error"], "not retained") {
		t.Errorf("error %q does not carry the store's \"not retained\" message", body["error"])
	}
	// A retained version still rolls back fine.
	var rb rollbackResponse
	if code := postJSON(t, ts.URL+"/rollback?version="+strconv.FormatUint(sum.StoredVersions[0], 10), nil, &rb); code != http.StatusOK {
		t.Fatalf("rollback to retained version: status %d", code)
	}
	if rb.RestoredVersion != sum.StoredVersions[0] {
		t.Errorf("rollback response %+v", rb)
	}
}

// TestServeSnapshotAndSummaryExposeRecords: durable sites report each
// stored version's record kind and on-disk bytes through the summary,
// and the serving version's record through the snapshot route.
func TestServeSnapshotAndSummaryExposeRecords(t *testing.T) {
	s := newServer(0)
	st, _, err := buildSite(siteSpec{name: "default", env: "office"}, 11, t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.addSite(st); err != nil {
		t.Fatal(err)
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if code := postJSON(t, ts.URL+"/update", updateRequest{Days: 15}, nil); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	var sum siteSummaryJSON
	if code := getJSON(t, ts.URL+"/sites/default", &sum); code != http.StatusOK {
		t.Fatalf("summary status %d", code)
	}
	if len(sum.StoredRecords) != len(sum.StoredVersions) || len(sum.StoredRecords) != 2 {
		t.Fatalf("stored records %+v vs versions %v", sum.StoredRecords, sum.StoredVersions)
	}
	for i, rec := range sum.StoredRecords {
		if rec.Version != sum.StoredVersions[i] || rec.Bytes <= 0 || (rec.Kind != "full" && rec.Kind != "delta") {
			t.Errorf("stored record %+v", rec)
		}
	}
	var snap snapshotResponse
	if code := getJSON(t, ts.URL+"/snapshot", &snap); code != http.StatusOK {
		t.Fatalf("snapshot status %d", code)
	}
	if snap.Record == nil || snap.Record.Version != snap.Version || snap.Record.Bytes <= 0 {
		t.Fatalf("snapshot record %+v, want the serving version's on-disk record", snap.Record)
	}

	// In-memory sites have no records to report.
	s2 := newServer(0)
	if err := s2.addSite(newOfficeSite(t, "default", 1)); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()
	var memSnap snapshotResponse
	if code := getJSON(t, ts2.URL+"/snapshot", &memSnap); code != http.StatusOK {
		t.Fatalf("in-memory snapshot status %d", code)
	}
	if memSnap.Record != nil {
		t.Errorf("in-memory snapshot reports a record: %+v", memSnap.Record)
	}
}
