package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"iupdater"
)

func newTestServer(t *testing.T) (*httptest.Server, *iupdater.Testbed) {
	t.Helper()
	tb := iupdater.NewTestbed(iupdater.Office(), 1)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(d, tb, 0).handler())
	t.Cleanup(ts.Close)
	return ts, tb
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func TestServeLocate(t *testing.T) {
	ts, tb := newTestServer(t)
	cx, cy := tb.CellCenter(42)
	rss := tb.MeasureOnline(cx, cy, time.Hour)

	var resp locateResponse
	if code := postJSON(t, ts.URL+"/locate", locateRequest{RSS: rss}, &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Version != 1 || resp.Position == nil {
		t.Fatalf("response %+v", resp)
	}
	if dx, dy := resp.Position.X-cx, resp.Position.Y-cy; dx*dx+dy*dy > 25 {
		t.Errorf("estimate (%.1f, %.1f) far from (%.1f, %.1f)", resp.Position.X, resp.Position.Y, cx, cy)
	}

	// Batch form.
	var batchResp locateResponse
	batch := [][]float64{rss, tb.MeasureOnline(cx, cy, 2*time.Hour)}
	if code := postJSON(t, ts.URL+"/locate", locateRequest{Batch: batch}, &batchResp); code != http.StatusOK {
		t.Fatalf("batch status %d", code)
	}
	if len(batchResp.Positions) != 2 {
		t.Fatalf("batch response %+v", batchResp)
	}

	// Malformed requests.
	if code := postJSON(t, ts.URL+"/locate", locateRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty request: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/locate", locateRequest{RSS: []float64{1}}, nil); code != http.StatusUnprocessableEntity {
		t.Errorf("short rss: status %d", code)
	}
}

func TestServeUpdateAndSnapshot(t *testing.T) {
	ts, _ := newTestServer(t)

	var up updateResponse
	if code := postJSON(t, ts.URL+"/update", updateRequest{Days: 30}, &up); code != http.StatusOK {
		t.Fatalf("update status %d", code)
	}
	if up.Version != 2 || len(up.References) == 0 {
		t.Fatalf("update response %+v", up)
	}

	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap snapshotResponse
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 2 || snap.Links != 8 || snap.Cells != 96 {
		t.Fatalf("snapshot header %+v", snap)
	}
	if len(snap.Fingerprints) != snap.Links || len(snap.Fingerprints[0]) != snap.Cells {
		t.Fatalf("snapshot matrix %dx%d", len(snap.Fingerprints), len(snap.Fingerprints[0]))
	}

	if code := postJSON(t, ts.URL+"/update", updateRequest{}, nil); code != http.StatusBadRequest {
		t.Errorf("empty update: status %d", code)
	}
}

func TestServeRawUpdate(t *testing.T) {
	ts, tb := newTestServer(t)

	// First ask the server which reference locations it wants.
	var up updateResponse
	if code := postJSON(t, ts.URL+"/update", updateRequest{Days: 1}, &up); code != http.StatusOK {
		t.Fatalf("probe update status %d", code)
	}

	at := 45 * 24 * time.Hour
	cols, _ := tb.ReferenceMatrix(at, up.References)
	req := updateRequest{
		NoDecrease: tb.NoDecreaseMatrix(at).ToRows(),
		Known:      tb.Mask().ToRows(),
		References: cols.ToRows(),
	}
	var raw updateResponse
	if code := postJSON(t, ts.URL+"/update", req, &raw); code != http.StatusOK {
		t.Fatalf("raw update status %d", code)
	}
	if raw.Version != 3 {
		t.Errorf("raw update version %d", raw.Version)
	}
}

func TestServeDriftEndpointAndMonitorFeed(t *testing.T) {
	tb := iupdater.NewTestbed(iupdater.Office(), 1)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Without -monitor the endpoint is absent.
	off := httptest.NewServer(newServer(d, tb, 0).handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/drift")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/drift without -monitor: status %d, want 404", resp.StatusCode)
	}

	s := newServer(d, tb, 0)
	if err := s.enableMonitor(); err != nil {
		t.Fatal(err)
	}
	defer s.mon.Close()
	on := httptest.NewServer(s.handler())
	defer on.Close()

	// Served locate traffic must feed the monitor: single and batch.
	cx, cy := tb.CellCenter(10)
	rss := tb.MeasureOnline(cx, cy, time.Hour)
	if code := postJSON(t, on.URL+"/locate", locateRequest{RSS: rss}, nil); code != http.StatusOK {
		t.Fatalf("locate status %d", code)
	}
	batch := [][]float64{rss, tb.MeasureOnline(cx, cy, time.Hour+time.Minute)}
	if code := postJSON(t, on.URL+"/locate", locateRequest{Batch: batch}, nil); code != http.StatusOK {
		t.Fatalf("batch locate status %d", code)
	}

	resp, err = http.Get(on.URL + "/drift")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/drift status %d", resp.StatusCode)
	}
	var dr driftResponse
	if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
		t.Fatal(err)
	}
	if dr.Queries != 3 {
		t.Errorf("monitor observed %d queries, want 3 (1 single + 2 batch)", dr.Queries)
	}
	if dr.Version != 1 || dr.Detections != 0 {
		t.Errorf("unexpected drift stats %+v", dr)
	}
	if dr.Residual <= 0 {
		t.Errorf("residual %.3f, want > 0", dr.Residual)
	}
}

func TestServeGracefulShutdown(t *testing.T) {
	tb := iupdater.NewTestbed(iupdater.Office(), 1)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(d, tb, 0)
	if err := s.enableMonitor(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.handler()}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	cleaned := make(chan struct{})
	go func() {
		done <- serveUntil(ctx, srv, ln, 5*time.Second, func() {
			s.mon.Close()
			close(cleaned)
		})
	}()

	// The server must actually be serving before we shut it down.
	url := "http://" + ln.Addr().String()
	cx, cy := tb.CellCenter(5)
	rss := tb.MeasureOnline(cx, cy, time.Hour)
	if code := postJSON(t, url+"/locate", locateRequest{RSS: rss}, nil); code != http.StatusOK {
		t.Fatalf("pre-shutdown locate status %d", code)
	}

	cancel() // stands in for SIGINT/SIGTERM via signal.NotifyContext
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntil returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntil did not return after cancellation")
	}
	select {
	case <-cleaned:
	default:
		t.Fatal("cleanup did not run before serveUntil returned")
	}
	// The monitor is stopped: further observations must be rejected.
	if err := s.mon.Observe(rss); err == nil {
		t.Error("monitor still accepting observations after shutdown")
	}
	// And the listener is really closed.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}

func TestServePprofGating(t *testing.T) {
	// The profiling endpoints must be absent by default and present only
	// when the -pprof flag enables them.
	tb := iupdater.NewTestbed(iupdater.Office(), 1)
	d, _, err := tb.Deploy(0, 20)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(d, tb, 0)
	off := httptest.NewServer(s.handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof reachable without -pprof: status %d", resp.StatusCode)
	}

	s.pprof = true
	on := httptest.NewServer(s.handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof index with -pprof: status %d, want 200", resp.StatusCode)
	}
}
