package main

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"iupdater"
	"iupdater/internal/store"
)

// newDurableServer builds one durable office site under a fresh data
// directory and serves it, returning the test server and the site.
func newDurableServer(t *testing.T, retain int) (*httptest.Server, *site) {
	t.Helper()
	s := newServer(0)
	st, _, err := buildSite(siteSpec{name: "hq", env: "office"}, 7, t.TempDir(), retain, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.addSite(st); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.fleet.Close() })
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return ts, st
}

// TestServeRecordsStream drives the leader side of replication over
// HTTP: bootstrap and resume reads return frames a follower Replay
// accepts, and a resume point that compaction removed answers 410.
func TestServeRecordsStream(t *testing.T) {
	ts, st := newDurableServer(t, 1)

	readFrames := func(t *testing.T, url string) (frames [][]byte, leader string, status int) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, resp.Header.Get("Iupdater-Oldest-Version"), resp.StatusCode
		}
		for {
			frame, err := store.ReadFrame(resp.Body)
			if err == io.EOF {
				return frames, resp.Header.Get("Iupdater-Leader-Version"), resp.StatusCode
			}
			if err != nil {
				t.Fatalf("reading stream: %v", err)
			}
			frames = append(frames, frame)
		}
	}

	// Bootstrap: the initial survey is one full record at v1.
	frames, leader, status := readFrames(t, ts.URL+"/records?from=0")
	if status != http.StatusOK || len(frames) != 1 || leader != "1" {
		t.Fatalf("bootstrap: status %d, %d frames, leader %q", status, len(frames), leader)
	}
	var replay store.Replay
	if v, kind, err := replay.Apply(frames[0]); err != nil || v != 1 || kind != store.KindFull {
		t.Fatalf("applying bootstrap frame: v%d %v %v", v, kind, err)
	}

	// Publish v2; resuming after v1 returns exactly the new record, on
	// the per-site route too.
	var up updateResponse
	if code := postJSON(t, ts.URL+"/update", updateRequest{Days: 30}, &up); code != http.StatusOK || up.Version != 2 {
		t.Fatalf("update: status %d version %d", code, up.Version)
	}
	frames, leader, status = readFrames(t, ts.URL+"/sites/hq/records?from=2")
	if status != http.StatusOK || len(frames) != 1 || leader != "2" {
		t.Fatalf("resume: status %d, %d frames, leader %q", status, len(frames), leader)
	}
	if v, _, err := replay.Apply(frames[0]); err != nil || v != 2 {
		t.Fatalf("applying resumed frame: v%d %v", v, err)
	}
	snap := st.deployment().Snapshot()
	if want := snap.Fingerprints(); !bytes.Equal(replay.Payload()[33:], encodeTail(want)) {
		t.Fatal("replayed payload does not match the leader's snapshot")
	}

	// Caught up: an empty 200, not an error.
	frames, _, status = readFrames(t, ts.URL+"/records?from=3")
	if status != http.StatusOK || len(frames) != 0 {
		t.Fatalf("caught-up read: status %d, %d frames", status, len(frames))
	}

	// Publish until retention-1 compaction drops v1; the stale resume
	// point must answer 410 with the horizon advertised.
	if code := postJSON(t, ts.URL+"/update", updateRequest{Days: 31}, &up); code != http.StatusOK {
		t.Fatalf("update: status %d", code)
	}
	if err := st.deployment().Store().Compact(); err != nil {
		t.Fatal(err)
	}
	_, oldest, status := readFrames(t, ts.URL+"/records?from=1")
	if status != http.StatusGone {
		t.Fatalf("compacted resume: status %d, want 410", status)
	}
	if oldest == "" || oldest == "0" {
		t.Fatalf("410 advertised oldest version %q", oldest)
	}

	// Malformed parameters and in-memory sites.
	if status := func() int {
		resp, err := http.Get(ts.URL + "/records?from=banana")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}(); status != http.StatusBadRequest {
		t.Fatalf("bad from: status %d", status)
	}
}

// encodeTail re-encodes a matrix the way snapshot payloads carry it
// past the 33-byte header (column-major float64 bits), for
// bit-identity checks against a replayed payload.
func encodeTail(m iupdater.Matrix) []byte {
	rows, cols := m.Dims()
	out := make([]byte, rows*cols*8)
	idx := 0
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			binary.LittleEndian.PutUint64(out[idx:], math.Float64bits(m.At(i, j)))
			idx += 8
		}
	}
	return out
}

// TestServeGracefulShutdownWithParkedRecordsPoll: a follower's records
// long-poll parked on the leader must not pin graceful shutdown until
// its wait deadline — the drain hook cancels it immediately.
func TestServeGracefulShutdownWithParkedRecordsPoll(t *testing.T) {
	s := newServer(0)
	st, _, err := buildSite(siteSpec{name: "hq", env: "office"}, 7, t.TempDir(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.addSite(st); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.fleet.Close() })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: s.handler()}
	srv.RegisterOnShutdown(s.cancelDrain)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveUntil(ctx, srv, ln, 5*time.Second, func() {}) }()

	// Park a caught-up long-poll far longer than the drain timeout.
	polled := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/records?from=2&wait=25s")
		if err != nil {
			polled <- -1
			return
		}
		resp.Body.Close()
		polled <- resp.StatusCode
	}()
	time.Sleep(100 * time.Millisecond) // let the poll reach the handler and park

	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveUntil returned %v, want nil", err)
		}
	case <-time.After(4 * time.Second):
		t.Fatal("shutdown pinned by the parked long-poll")
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("drain took %s, want the parked poll cancelled immediately", d)
	}
	if code := <-polled; code != http.StatusOK && code != -1 {
		t.Fatalf("parked poll finished with status %d", code)
	}
}

// TestServeFollowerSite runs a full leader/follower pair over HTTP:
// the follower site syncs through a Replica, serves bit-identical
// localization read-only, and reports its lag under /sites.
func TestServeFollowerSite(t *testing.T) {
	leaderTS, leaderSite := newDurableServer(t, 0)

	rep, err := iupdater.OpenReplica(leaderTS.URL+"/records",
		iupdater.WithReplicaWait(200*time.Millisecond),
		iupdater.WithReplicaBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	follower := newServer(0)
	if err := follower.addSite(newReplicaSite("branch", rep)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { follower.fleet.Close() })
	fts := httptest.NewServer(follower.handler())
	t.Cleanup(fts.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := rep.WaitVersion(ctx, 1); err != nil {
		t.Fatal(err)
	}

	// Bit-identical serving: the same measurement localizes to the
	// same position at the same version on both sides.
	tb := leaderSite.tb
	cx, cy := tb.CellCenter(17)
	rss := tb.MeasureOnline(cx, cy, time.Hour)
	var lResp, fResp locateResponse
	if code := postJSON(t, leaderTS.URL+"/locate", locateRequest{RSS: rss}, &lResp); code != http.StatusOK {
		t.Fatalf("leader locate status %d", code)
	}
	if code := postJSON(t, fts.URL+"/sites/branch/locate", locateRequest{RSS: rss}, &fResp); code != http.StatusOK {
		t.Fatalf("follower locate status %d", code)
	}
	if lResp.Version != fResp.Version || *lResp.Position != *fResp.Position {
		t.Fatalf("leader %+v vs follower %+v", lResp, fResp)
	}

	// The follower stays read-only and does not re-serve records.
	if code := postJSON(t, fts.URL+"/sites/branch/update", updateRequest{Days: 10}, nil); code != http.StatusConflict {
		t.Fatalf("follower update status %d, want 409", code)
	}
	if code := postJSON(t, fts.URL+"/sites/branch/rollback?version=1", nil, nil); code != http.StatusConflict {
		t.Fatalf("follower rollback status %d, want 409", code)
	}
	if code := getJSON(t, fts.URL+"/sites/branch/records?from=0", nil); code != http.StatusConflict {
		t.Fatalf("follower records status %d, want 409", code)
	}

	// A leader publish propagates; the summary reports the replication
	// state with zero lag once applied.
	var up updateResponse
	if code := postJSON(t, leaderTS.URL+"/update", updateRequest{Days: 30}, &up); code != http.StatusOK || up.Version != 2 {
		t.Fatalf("leader update: status %d version %d", code, up.Version)
	}
	if _, err := rep.WaitVersion(ctx, 2); err != nil {
		t.Fatal(err)
	}
	var sum siteSummaryJSON
	if code := getJSON(t, fts.URL+"/sites/branch", &sum); code != http.StatusOK {
		t.Fatalf("/sites/branch status %d", code)
	}
	if sum.Replica == nil || sum.Replica.Source == "" {
		t.Fatalf("summary %+v: want replica status", sum)
	}
	if sum.Version != 2 || sum.Replica.Lag != 0 || sum.Replica.LeaderVersion != 2 {
		t.Fatalf("replica status %+v, want v2 lag 0", sum.Replica)
	}
	if sum.Links == 0 || sum.Cells == 0 {
		t.Fatalf("summary %+v: want geometry learned from the stream", sum)
	}

	// healthz on a follower-only server reports the synced version.
	var hz map[string]any
	if code := getJSON(t, fts.URL+"/healthz", &hz); code != http.StatusOK || hz["version"].(float64) != 2 {
		t.Fatalf("healthz %v (status %d)", hz, code)
	}
}
