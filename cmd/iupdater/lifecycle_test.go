package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"iupdater"
)

// doJSON issues one request with an arbitrary method, optional JSON
// body and optional bearer token, decoding a JSON response when out is
// non-nil.
func doJSON(t *testing.T, method, url, token string, body, out any) (int, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestServeSiteLifecycle drives the dynamic site surface end to end:
// PUT creates a servable site, its token gates the mutating routes,
// DELETE tears it down, and the usual error shapes (400/404/409) come
// back for bad names, duplicates and unknown sites.
func TestServeSiteLifecycle(t *testing.T) {
	s := newServer(0)
	if err := s.addSite(newOfficeSite(t, "default", 1)); err != nil {
		t.Fatal(err)
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Create a tokened site over the API.
	var created siteSummaryJSON
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/sites/annex", "",
		sitePutRequest{Env: "office", Seed: 3, Token: "s3cret"}, &created); code != http.StatusCreated {
		t.Fatalf("PUT /sites/annex: status %d", code)
	}
	if created.Name != "annex" || created.Version != 1 || !created.Hydrated {
		t.Fatalf("created summary %+v", created)
	}

	// It serves immediately, and shows up in the fleet listing.
	tb := iupdater.NewTestbed(iupdater.Office(), 3)
	cx, cy := tb.CellCenter(10)
	rss := tb.MeasureOnline(cx, cy, time.Hour)
	if code := postJSON(t, ts.URL+"/sites/annex/locate", locateRequest{RSS: rss}, nil); code != http.StatusOK {
		t.Fatalf("locate on created site: status %d", code)
	}
	var list sitesResponse
	if code := getJSON(t, ts.URL+"/sites", &list); code != http.StatusOK || len(list.Sites) != 2 {
		t.Fatalf("GET /sites: status %d, %d sites", code, len(list.Sites))
	}

	// The token gates mutating routes: update and rollback 401 without
	// it, succeed with it. Reads stay open.
	if code, hdr := doJSON(t, http.MethodPost, ts.URL+"/sites/annex/update", "", updateRequest{Days: 10}, nil); code != http.StatusUnauthorized {
		t.Fatalf("untokened update: status %d", code)
	} else if hdr.Get("WWW-Authenticate") != "Bearer" {
		t.Fatalf("401 WWW-Authenticate %q", hdr.Get("WWW-Authenticate"))
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/sites/annex/update", "wrong", updateRequest{Days: 10}, nil); code != http.StatusUnauthorized {
		t.Fatalf("wrong-token update: status %d", code)
	}
	var up updateResponse
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/sites/annex/update", "s3cret", updateRequest{Days: 10}, &up); code != http.StatusOK || up.Version != 2 {
		t.Fatalf("tokened update: status %d version %d", code, up.Version)
	}
	if code := getJSON(t, ts.URL+"/sites/annex/snapshot", nil); code != http.StatusOK {
		t.Fatalf("read with token set: status %d", code)
	}

	// Error shapes.
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/sites/annex", "", sitePutRequest{Env: "office"}, nil); code != http.StatusConflict {
		t.Fatalf("duplicate PUT: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/sites/bad.name", "", sitePutRequest{Env: "office"}, nil); code != http.StatusBadRequest {
		t.Fatalf("bad name PUT: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/sites/ghost", "", sitePutRequest{Env: "atlantis"}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown env PUT: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/sites/nosuch", "", nil, nil); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown: status %d", code)
	}

	// Delete is gated by the same token; afterwards the site is gone
	// from routing and the fleet alike.
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/sites/annex", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("untokened DELETE: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/sites/annex", "s3cret", nil, nil); code != http.StatusOK {
		t.Fatalf("DELETE: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/sites/annex", nil); code != http.StatusNotFound {
		t.Fatalf("GET deleted site: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/sites/annex/locate", locateRequest{RSS: rss}, nil); code != http.StatusNotFound {
		t.Fatalf("locate on deleted site: status %d", code)
	}

	// Removing the default site kills the alias routes with a clear 404.
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/sites/default", "", nil, nil); code != http.StatusOK {
		t.Fatalf("DELETE default: status %d", code)
	}
	if code := postJSON(t, ts.URL+"/locate", locateRequest{RSS: rss}, nil); code != http.StatusNotFound {
		t.Fatalf("alias locate after default removal: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz with no default: status %d", code)
	}
}

// TestServeReplicaLifecycleConflict: lifecycle mutations on a replica
// site answer 409 — a follower is torn down by stopping the follow, not
// through the leader-facing API.
func TestServeReplicaLifecycleConflict(t *testing.T) {
	leaderTS, _ := newDurableServer(t, 0)
	rep, err := iupdater.OpenReplica(leaderTS.URL+"/records",
		iupdater.WithReplicaWait(200*time.Millisecond),
		iupdater.WithReplicaBackoff(5*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(0)
	if err := s.addSite(newReplicaSite("mirror", rep)); err != nil {
		t.Fatal(err)
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/sites/mirror", "", nil, nil); code != http.StatusConflict {
		t.Fatalf("DELETE replica: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodPut, ts.URL+"/sites/mirror", "", sitePutRequest{Env: "office"}, nil); code != http.StatusConflict {
		t.Fatalf("PUT over replica name: status %d", code)
	}
}

// TestServeManifestRestart: sites created over the API are recorded in
// the fleet manifest and re-created — warm, with their tokens — by the
// next serve life over the same data directory.
func TestServeManifestRestart(t *testing.T) {
	dataDir := t.TempDir()
	openManifest := func() *iupdater.Store {
		m, err := iupdater.OpenStore(dataDir + "/fleet.manifest")
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	s1 := newServer(0)
	s1.dataDir, s1.defEnv = dataDir, "office"
	s1.manifest = openManifest()
	ts1 := httptest.NewServer(s1.handler())
	var created siteSummaryJSON
	if code, _ := doJSON(t, http.MethodPut, ts1.URL+"/sites/branch", "",
		sitePutRequest{Seed: 9, Token: "tok"}, &created); code != http.StatusCreated {
		t.Fatalf("PUT: status %d", code)
	}
	if !created.Durable {
		t.Fatal("API site under -data-dir is not durable")
	}
	var up updateResponse
	if code, _ := doJSON(t, http.MethodPost, ts1.URL+"/sites/branch/update", "tok", updateRequest{Days: 5}, &up); code != http.StatusOK || up.Version != 2 {
		t.Fatalf("update: status %d v%d", code, up.Version)
	}
	ts1.Close()
	if err := s1.fleet.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s1.manifest.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: the manifest re-creates the site, warm-started at the
	// version the first life published, token still enforced.
	s2 := newServer(0)
	s2.dataDir, s2.defEnv = dataDir, "office"
	s2.manifest = openManifest()
	if err := s2.restoreManifestSites(); err != nil {
		t.Fatal(err)
	}
	defer s2.fleet.Close()
	defer s2.manifest.Close()
	ts2 := httptest.NewServer(s2.handler())
	defer ts2.Close()

	var sum siteSummaryJSON
	if code := getJSON(t, ts2.URL+"/sites/branch", &sum); code != http.StatusOK {
		t.Fatalf("GET restored site: status %d", code)
	}
	if sum.Version != 2 || !sum.Durable {
		t.Fatalf("restored summary %+v, want warm start at v2", sum)
	}
	if code, _ := doJSON(t, http.MethodPost, ts2.URL+"/sites/branch/rollback?version=1", "", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("untokened rollback after restart: status %d", code)
	}

	// DELETE drops the manifest entry: a third life restores nothing.
	if code, _ := doJSON(t, http.MethodDelete, ts2.URL+"/sites/branch", "tok", nil, nil); code != http.StatusOK {
		t.Fatalf("DELETE: status %d", code)
	}
	s3 := newServer(0)
	s3.dataDir, s3.defEnv = dataDir, "office"
	s3.manifest = openManifest()
	if err := s3.restoreManifestSites(); err != nil {
		t.Fatal(err)
	}
	defer s3.fleet.Close()
	defer s3.manifest.Close()
	if s3.site("branch") != nil {
		t.Fatal("deleted site came back after restart")
	}
}
