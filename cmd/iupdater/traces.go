package main

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	"iupdater/internal/trace"
)

// This file is the serve layer's tracing surface: the per-route
// instrumentation middleware (W3C traceparent in and out, structured
// access log), and the /traces inspection endpoints over the tracer's
// retained rings.

// newServeTracer builds the server's tracer. headEvery retains 1 in N
// request traces up front (0 = slow/forced captures only). Slow
// thresholds are per route family; the records long-poll is exempted
// from slow capture entirely — a caught-up follower legitimately parks
// for its full wait, and those "slow" requests would drown the ring.
func newServeTracer(headEvery int) *trace.Tracer {
	return trace.New(trace.Config{
		HeadEvery: headEvery,
		SlowThreshold: map[string]time.Duration{
			"http.records": -1,              // long-poll: parked-by-design
			"http.update":  2 * time.Second, // reconstruction is legitimately heavy
			"replica.poll": -1,              // follower long-poll, force-retained on frames
		},
	})
}

// routeName derives the trace path key for a mux pattern: the per-site
// prefix is folded away so /locate and /sites/{site}/locate share one
// sampling policy, and the result is namespaced under "http." to keep
// serve-layer traces distinct from the library's ("locate", "update").
func routeName(pattern string) string {
	p := strings.TrimPrefix(pattern, "/sites/{site}")
	if p == "" {
		p = "/site"
	}
	p = strings.NewReplacer("{", "", "}", "").Replace(strings.Trim(p, "/"))
	return "http." + p
}

// statusWriter captures the response status for the access log and the
// root span, passing Flush through for streamed responses.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps one route handler with request tracing and access
// logging. Every request gets a trace rooted at the route's path key
// (retention decided by the tracer's sampling policy): an incoming W3C
// traceparent header is adopted as the remote parent, and the response
// always carries Traceparent and Iupdater-Trace-Id headers so callers
// can fetch the trace from /traces/{id}. The trace rides the request
// context for handlers that add pipeline spans (locate, update).
func (s *server) instrument(method, pattern string, h http.HandlerFunc) http.HandlerFunc {
	name := routeName(pattern)
	return func(w http.ResponseWriter, r *http.Request) {
		tr := s.tracer.Start(name, s.siteName(r))
		if tr == nil && s.access == nil {
			h(w, r)
			return
		}
		start := time.Now()
		if tr != nil {
			if id, parent, sampled, ok := trace.ParseTraceparent(r.Header.Get("traceparent")); ok {
				tr.SetRemote(id, parent, sampled)
			}
			w.Header().Set("Traceparent", trace.FormatTraceparent(tr.ID(), tr.RootSpanID(), tr.Sampled()))
			w.Header().Set("Iupdater-Trace-Id", tr.ID().String())
			r = r.WithContext(trace.NewContext(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		el := time.Since(start)
		if tr != nil {
			root := tr.Root()
			root.SetStr("method", method)
			root.SetInt("status", int64(sw.status))
			root.EndDur(el)
		}
		if s.access != nil {
			id := "-"
			if tr != nil {
				id = tr.ID().String()
			}
			s.access.Printf("method=%s route=%s site=%s status=%d dur=%s trace=%s",
				method, pattern, s.siteName(r), sw.status, el.Round(time.Microsecond), id)
		}
		tr.Finish()
	}
}

// siteName resolves the request's site label for traces and the access
// log without writing an error on unknown names (the handler does
// that): the {site} path value when present, else the default site.
func (s *server) siteName(r *http.Request) string {
	if name := r.PathValue("site"); name != "" {
		return name
	}
	if s.def != nil {
		return s.def.name
	}
	return ""
}

// traceSummaryJSON is one retained trace in the GET /traces listing.
type traceSummaryJSON struct {
	ID         string    `json:"id"`
	Path       string    `json:"path"`
	Site       string    `json:"site,omitempty"`
	Start      time.Time `json:"start"`
	DurationMs float64   `json:"duration_ms"`
	Slow       bool      `json:"slow,omitempty"`
	Forced     bool      `json:"forced,omitempty"`
	Spans      int       `json:"spans"`
}

type tracesResponse struct {
	// Recent and Slow are the two retention rings, newest first.
	Recent []traceSummaryJSON `json:"recent"`
	Slow   []traceSummaryJSON `json:"slow"`
	// Started counts all traces begun (sampled or not); Retained and
	// SlowRetained count ring publications.
	Started      uint64 `json:"started"`
	Retained     uint64 `json:"retained"`
	SlowRetained uint64 `json:"slow_retained"`
}

func traceSummary(td *trace.TraceData) traceSummaryJSON {
	return traceSummaryJSON{
		ID:         td.ID.String(),
		Path:       td.Path,
		Site:       td.Site,
		Start:      td.Start,
		DurationMs: float64(td.Duration) / float64(time.Millisecond),
		Slow:       td.Slow,
		Forced:     td.Forced,
		Spans:      len(td.Spans),
	}
}

// summaries renders a ring snapshot newest-first.
func summaries(tds []*trace.TraceData) []traceSummaryJSON {
	out := make([]traceSummaryJSON, 0, len(tds))
	for i := len(tds) - 1; i >= 0; i-- {
		out = append(out, traceSummary(tds[i]))
	}
	return out
}

func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled"))
		return
	}
	stats := s.tracer.Stats()
	writeJSON(w, http.StatusOK, tracesResponse{
		Recent:       summaries(s.tracer.Recent()),
		Slow:         summaries(s.tracer.SlowTraces()),
		Started:      stats.Started,
		Retained:     stats.Retained,
		SlowRetained: stats.Slow,
	})
}

// spanJSON is one span of a full trace tree, attrs flattened to a map.
type spanJSON struct {
	ID         uint64         `json:"id"`
	ParentID   uint64         `json:"parent_id,omitempty"`
	Name       string         `json:"name"`
	StartMs    float64        `json:"start_ms"`
	DurationMs float64        `json:"duration_ms"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

type traceResponse struct {
	traceSummaryJSON
	// RemoteParent is the remote parent span ID adopted from an incoming
	// traceparent header, 0 for locally rooted traces.
	RemoteParent uint64     `json:"remote_parent,omitempty"`
	Spans        []spanJSON `json:"tree"`
}

func attrValue(a trace.Attr) any {
	switch a.Kind {
	case trace.KindInt:
		return a.Int
	case trace.KindFloat:
		return a.Float
	case trace.KindBool:
		return a.Int != 0
	default:
		return a.Str
	}
}

func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("tracing disabled"))
		return
	}
	id, ok := trace.ParseID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Errorf("trace ID %q: want 32 hex digits", r.PathValue("id")))
		return
	}
	td, ok := s.tracer.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("trace %s not retained (evicted or never sampled; GET /traces lists retained traces)", id))
		return
	}
	resp := traceResponse{
		traceSummaryJSON: traceSummary(td),
		RemoteParent:     td.Remote,
		Spans:            make([]spanJSON, len(td.Spans)),
	}
	for i, sp := range td.Spans {
		sj := spanJSON{
			ID:         sp.ID,
			ParentID:   sp.ParentID,
			Name:       sp.Name,
			StartMs:    float64(sp.Start) / float64(time.Millisecond),
			DurationMs: float64(sp.Duration) / float64(time.Millisecond),
		}
		if len(sp.Attrs) > 0 {
			sj.Attrs = make(map[string]any, len(sp.Attrs))
			for _, a := range sp.Attrs {
				sj.Attrs[a.Key] = attrValue(a)
			}
		}
		resp.Spans[i] = sj
	}
	writeJSON(w, http.StatusOK, resp)
}
