package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"iupdater"
)

// tracedOfficeSite is newOfficeSite with a durable store and the
// server's tracer attached to the deployment, so library pipelines
// (locate, auto-update) land in the rings /traces serves.
func tracedOfficeSite(t *testing.T, s *server, name string, seed uint64) *site {
	t.Helper()
	st, err := iupdater.OpenStore(t.TempDir(), iupdater.WithoutSync())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	tb := iupdater.NewTestbed(iupdater.Office(), seed)
	d, _, err := tb.Deploy(0, 20, iupdater.WithStore(st), iupdater.WithTracer(s.tracer, name))
	if err != nil {
		t.Fatal(err)
	}
	return newSite(name, d, tb)
}

// TestServeTraceparentRoundTrip exercises W3C context propagation on a
// route: an incoming sampled traceparent is adopted (the response
// echoes the same trace ID with a server-side span), the trace is
// force-retained, and GET /traces/{id} returns the span tree down to
// the OMP solve.
func TestServeTraceparentRoundTrip(t *testing.T) {
	s := newServer(0)
	if err := s.addSite(newOfficeSite(t, "default", 1)); err != nil {
		t.Fatal(err)
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	tb := s.def.tb
	body, _ := json.Marshal(map[string]any{"rss": tb.MeasureOnline(2, 2, 0)})
	req, err := http.NewRequest("POST", ts.URL+"/locate", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	const upstream = "11112222333344445555666677778888"
	req.Header.Set("traceparent", "00-"+upstream+"-00000000000000aa-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /locate: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("Iupdater-Trace-Id"); got != upstream {
		t.Fatalf("Iupdater-Trace-Id = %q, want adopted upstream ID %q", got, upstream)
	}
	tp := resp.Header.Get("Traceparent")
	parts := strings.Split(tp, "-")
	if len(parts) != 4 || parts[0] != "00" || parts[1] != upstream || parts[3] != "01" {
		t.Fatalf("response traceparent %q does not continue upstream context", tp)
	}
	if parts[2] == "00000000000000aa" {
		t.Fatalf("response traceparent %q re-uses the caller's span ID", tp)
	}

	var tr traceResponse
	if code := getJSON(t, ts.URL+"/traces/"+upstream, &tr); code != http.StatusOK {
		t.Fatalf("GET /traces/{id}: status %d", code)
	}
	if tr.Path != "http.locate" || tr.RemoteParent != 0xaa {
		t.Fatalf("trace = %+v, want http.locate with remote parent aa", tr.traceSummaryJSON)
	}
	names := make(map[string]spanJSON, len(tr.Spans))
	for _, sp := range tr.Spans {
		names[sp.Name] = sp
	}
	if _, ok := names["omp.solve"]; !ok {
		t.Errorf("trace tree lacks the omp.solve span: %+v", tr.Spans)
	}
	if v, ok := tr.Spans[0].Attrs["status"].(float64); !ok || v != 200 {
		t.Errorf("root status attr = %v, want 200", tr.Spans[0].Attrs["status"])
	}
	if v, ok := tr.Spans[0].Attrs["method"].(string); !ok || v != "POST" {
		t.Errorf("root method attr = %v, want POST", tr.Spans[0].Attrs["method"])
	}

	// The listing must include the retained trace; a garbage ID is a
	// 400 and an unknown-but-valid one a 404.
	var listing tracesResponse
	if code := getJSON(t, ts.URL+"/traces", &listing); code != http.StatusOK {
		t.Fatalf("GET /traces: status %d", code)
	}
	found := false
	for _, sum := range listing.Recent {
		if sum.ID == upstream {
			found = true
		}
	}
	if !found {
		t.Errorf("GET /traces recent ring lacks %s: %+v", upstream, listing.Recent)
	}
	if code := getJSON(t, ts.URL+"/traces/zzz", nil); code != http.StatusBadRequest {
		t.Errorf("GET /traces/zzz: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/traces/"+strings.Repeat("ab", 16), nil); code != http.StatusNotFound {
		t.Errorf("GET /traces/<unknown>: status %d, want 404", code)
	}
}

// TestServeUpdateTraceCoversPipeline POSTs a manual update with a
// sampled traceparent and asserts the retained trace spans the whole
// pipeline: HTTP entry, the sample measurement, then reconstruct →
// persist → swap from the library.
func TestServeUpdateTraceCoversPipeline(t *testing.T) {
	s := newServer(0)
	if err := s.addSite(tracedOfficeSite(t, s, "default", 1)); err != nil {
		t.Fatal(err)
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	const id = "aaaabbbbccccddddeeeeffff00001111"
	body, _ := json.Marshal(map[string]any{"days": 45})
	req, err := http.NewRequest("POST", ts.URL+"/update", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+id+"-0000000000000001-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /update: status %d", resp.StatusCode)
	}
	var tr traceResponse
	if code := getJSON(t, ts.URL+"/traces/"+id, &tr); code != http.StatusOK {
		t.Fatalf("GET /traces/%s: status %d", id, code)
	}
	for _, want := range []string{"sample", "reconstruct", "snapshot.build", "persist", "swap"} {
		found := false
		for _, sp := range tr.Spans {
			if sp.Name == want && sp.DurationMs > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("update trace lacks a non-zero %q span: %+v", want, tr.Spans)
		}
	}
}

// driftAfter flags unconditionally once calibrated; used to force an
// auto-update from served locate traffic.
type driftAfter struct{}

func (driftAfter) Observe(float64) bool { return true }
func (driftAfter) Score() float64       { return 2 }
func (driftAfter) Reset()               {}

// TestServeAutoUpdateTraceUnderHammer is the acceptance path: locate
// traffic hammers a monitored durable site from several goroutines
// (updates swap snapshots mid-flight under -race) until drift triggers
// an auto-update, whose forced trace must then be retrievable at
// GET /traces/{id} with a span tree covering detect → sample →
// reconstruct → persist → swap, all with non-zero durations.
func TestServeAutoUpdateTraceUnderHammer(t *testing.T) {
	s := newServer(0)
	st := tracedOfficeSite(t, s, "default", 1)
	if err := st.enableMonitor(
		iupdater.WithDriftDetector(driftAfter{}),
		iupdater.WithDriftHysteresis(3),
		iupdater.WithSynchronousUpdates(),
	); err != nil {
		t.Fatal(err)
	}
	if err := s.addSite(st); err != nil {
		t.Fatal(err)
	}
	defer s.fleet.Close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// Hammer /locate from four goroutines; the monitor's synchronous
	// auto-update publishes mid-traffic.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tb := st.tb
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rss := tb.MeasureOnline(1+float64(g), 2, time.Duration(i)*time.Second)
				if _, err := postStatus(ts.URL+"/locate", map[string]any{"rss": rss}); err != nil {
					return
				}
			}
		}(g)
	}
	var drift driftResponse
	deadline := time.Now().Add(30 * time.Second)
	for drift.UpdatesCompleted == 0 && time.Now().Before(deadline) {
		getJSON(t, ts.URL+"/drift", &drift)
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if drift.UpdatesCompleted == 0 {
		t.Fatalf("no auto-update completed: %+v", drift)
	}
	if drift.LastUpdateTrace == "" {
		t.Fatal("drift stats carry no auto-update trace ID")
	}
	var tr traceResponse
	if code := getJSON(t, ts.URL+"/traces/"+drift.LastUpdateTrace, &tr); code != http.StatusOK {
		t.Fatalf("GET /traces/%s: status %d", drift.LastUpdateTrace, code)
	}
	if !tr.Forced {
		t.Error("auto-update trace not forced")
	}
	for _, want := range []string{"detect", "sample", "reconstruct", "persist", "swap"} {
		found := false
		for _, sp := range tr.Spans {
			if sp.Name == want && sp.DurationMs > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("auto-update trace lacks a non-zero %q span: %+v", want, tr.Spans)
		}
	}
}

// TestServeAccessLog asserts the -access-log line shape: method,
// route, site, status, duration and trace ID per request.
func TestServeAccessLog(t *testing.T) {
	s := newServer(0)
	if err := s.addSite(newOfficeSite(t, "default", 1)); err != nil {
		t.Fatal(err)
	}
	defer s.fleet.Close()
	var buf bytes.Buffer
	s.access = log.New(&buf, "", 0)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("GET /healthz: status %d", code)
	}
	if code := getJSON(t, ts.URL+"/sites/nope/drift", nil); code != http.StatusNotFound {
		t.Fatalf("GET /sites/nope/drift: status %d, want 404", code)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for _, want := range []string{"method=GET", "route=/healthz", "site=default", "status=200", "dur=", "trace="} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("access line %q lacks %q", lines[0], want)
		}
	}
	for _, want := range []string{"route=/sites/{site}/drift", "site=nope", "status=404"} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("access line %q lacks %q", lines[1], want)
		}
	}
	// The logged trace ID matches the response header, so a slow line
	// in the log can be looked up under /traces.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	third := strings.Split(strings.TrimSpace(buf.String()), "\n")[2]
	if want := fmt.Sprintf("trace=%s", resp.Header.Get("Iupdater-Trace-Id")); !strings.Contains(third, want) {
		t.Errorf("access line %q lacks %q", third, want)
	}
}

// TestRouteName pins the pattern-to-path-key folding the sampling
// policy relies on.
func TestRouteName(t *testing.T) {
	for pattern, want := range map[string]string{
		"/locate":               "http.locate",
		"/sites/{site}/locate":  "http.locate",
		"/sites/{site}/records": "http.records",
		"/sites/{site}":         "http.site",
		"/traces/{id}":          "http.traces/id",
		"/healthz":              "http.healthz",
	} {
		if got := routeName(pattern); got != want {
			t.Errorf("routeName(%q) = %q, want %q", pattern, got, want)
		}
	}
}

// TestServeTracerUnsampledIsCheap sanity-checks the default serve
// tracer policy: a flood of fast requests retains nothing (no head
// sampling, thresholds unmet), so the rings stay useful for the rare
// slow or forced capture.
func TestServeTracerUnsampledIsCheap(t *testing.T) {
	tracer := newServeTracer(0)
	for i := 0; i < 100; i++ {
		tr := tracer.Start("http.locate", "default")
		tr.StartSpan("omp.solve").End()
		tr.Finish()
	}
	if st := tracer.Stats(); st.Started != 100 || st.Retained != 0 {
		t.Fatalf("stats = %+v, want 100 started, 0 retained", tracer.Stats())
	}
	// Long-poll paths are exempt from slow capture entirely.
	tr := tracer.Start("http.records", "default")
	time.Sleep(60 * time.Millisecond) // over the default 50 ms slow threshold
	tr.Finish()
	if st := tracer.Stats(); st.Retained != 0 {
		t.Fatalf("parked long-poll retained: %+v", st)
	}
}
