package main

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/debug"
	runtimemetrics "runtime/metrics"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"iupdater"
	"iupdater/internal/obs"
	"iupdater/internal/trace"
)

// site is one served deployment: the testbed standing in for that
// site's radio hardware, the simulated clock its measurements are taken
// at, and the fleet Site handle the deployment and monitor live behind
// (so the fleet's snapshot LRU can park and rehydrate them without the
// serve layer holding stale pointers). A replica site (rep != nil) has
// neither a deployment nor a testbed: it serves read-only localization
// from the snapshots its follower tails off a leader.
type site struct {
	name string
	tb   *iupdater.Testbed
	rep  *iupdater.Replica
	// token, when non-empty, must be presented as a bearer token on the
	// site's mutating routes (update, rollback, delete).
	token string

	// d and mon hold the deployment and monitor only between newSite and
	// addSite; registration hands them to the fleet and nils them. fs is
	// the fleet handle handlers resolve them through afterwards.
	d          *iupdater.Deployment
	mon        *iupdater.Monitor
	monFactory func(*iupdater.Deployment) (*iupdater.Monitor, error)
	fs         *iupdater.Site

	// mu guards clock — the simulated elapsed deployment time advanced
	// by testbed-driven updates — and serializes all testbed
	// measurements (the channel simulator is not safe for concurrent
	// use: both POST /update demo requests and the monitor's sampler
	// measure from it).
	mu    sync.Mutex
	clock time.Duration
}

func newSite(name string, d *iupdater.Deployment, tb *iupdater.Testbed) *site {
	return &site{name: name, d: d, tb: tb}
}

func newReplicaSite(name string, rep *iupdater.Replica) *site {
	return &site{name: name, rep: rep}
}

// deployment peeks at the site's deployment without rehydrating a
// parked site: nil for replicas, parked sites, and anything in
// between. Handlers that must serve use writer instead.
func (st *site) deployment() *iupdater.Deployment {
	if st.fs != nil {
		return st.fs.Deployment()
	}
	return st.d
}

// monitor peeks at the site's monitor without rehydrating.
func (st *site) monitor() *iupdater.Monitor {
	if st.fs != nil {
		return st.fs.Monitor()
	}
	return st.mon
}

// writer resolves the site's deployment and monitor through the fleet,
// re-materializing a parked site from its store — a cold site's first
// request pays the rehydration here. On failure (the site was removed
// mid-request) it writes the 404 and reports false.
func (st *site) writer(w http.ResponseWriter) (*iupdater.Deployment, *iupdater.Monitor, bool) {
	d, mon, err := st.fs.Hydrate()
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return nil, nil, false
	}
	return d, mon, true
}

// snap returns the site's serving snapshot without rehydrating: the
// deployment's latest for a hydrated writer, the last applied one for
// a replica — nil for an unsynced replica or a parked site.
func (st *site) snap() *iupdater.Snapshot {
	if st.rep != nil {
		return st.rep.Snapshot()
	}
	if d := st.deployment(); d != nil {
		return d.Snapshot()
	}
	return nil
}

// latency returns the site's locate-latency histogram — the
// deployment's for a writer, the replica's for a follower. The serve
// handlers observe into it directly because they localize against a
// pinned snapshot (for version consistency), bypassing the instrumented
// Deployment.Locate wrappers. Nil while a writer site is parked (its
// histogram is released with the deployment).
func (st *site) latency() *obs.Histogram {
	if st.rep != nil {
		return st.rep.LocateLatency()
	}
	if d := st.deployment(); d != nil {
		return d.LocateLatency()
	}
	return nil
}

// readOnly writes the 409 telling callers of mutating routes that this
// site is a follower, reporting whether it did so.
func (st *site) readOnly(w http.ResponseWriter) bool {
	if st.rep == nil {
		return false
	}
	writeError(w, http.StatusConflict,
		fmt.Errorf("site %s is a read-only replica (following %s)", st.name, st.rep.Source()))
	return true
}

// authorize enforces the site's bearer token on mutating routes,
// reporting whether the request may proceed. Sites created without a
// token (the -sites flag path) stay open, preserving the demo surface.
func (st *site) authorize(w http.ResponseWriter, r *http.Request) bool {
	if st.token == "" {
		return true
	}
	tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
	if !ok || subtle.ConstantTimeCompare([]byte(tok), []byte(st.token)) != 1 {
		w.Header().Set("WWW-Authenticate", "Bearer")
		writeError(w, http.StatusUnauthorized,
			fmt.Errorf("site %s requires its bearer token on mutating routes", st.name))
		return false
	}
	return true
}

// enableMonitor attaches a drift monitor whose reference surveys are
// taken from the site's testbed at the site's simulated clock, and
// records the factory the fleet uses to rebuild the monitor when a
// parked site rehydrates. Call before registering the site with a
// server.
func (st *site) enableMonitor(opts ...iupdater.MonitorOption) error {
	sampler := iupdater.SamplerFunc(func(refs []int) (iupdater.UpdateInputs, error) {
		st.mu.Lock()
		defer st.mu.Unlock()
		xr, _ := st.tb.ReferenceMatrix(st.clock, refs)
		return iupdater.UpdateInputs{
			NoDecrease: st.tb.NoDecreaseMatrix(st.clock),
			Known:      st.tb.Mask(),
			References: xr,
		}, nil
	})
	st.monFactory = func(d *iupdater.Deployment) (*iupdater.Monitor, error) {
		return iupdater.NewMonitor(d, sampler, opts...)
	}
	mon, err := st.monFactory(st.d)
	if err != nil {
		st.monFactory = nil
		return err
	}
	st.mon = mon
	return nil
}

// server exposes a Fleet of site deployments over HTTP/JSON.
// Localization queries hit each site's lock-free snapshot path; updates
// are serialized by the owning Deployment's write path. Every site is
// addressable under /sites/{site}/...; the original single-site routes
// (/locate, /update, /snapshot, /drift, /rollback) remain as aliases
// for the default site (the first one registered).
type server struct {
	fleet   *iupdater.Fleet
	workers int
	pprof   bool

	// mu guards sites and def: the site table is mutated at runtime by
	// PUT/DELETE /sites/{site} while every other route reads it.
	mu    sync.RWMutex
	sites map[string]*site
	def   *site

	// Defaults applied to sites created over the API (PUT /sites/{site}),
	// mirroring the serve flags the boot-time sites were built with.
	dataDir    string
	retain     int
	updateConc int
	monitorOn  bool
	defEnv     string

	// manifest, when non-nil, durably records the API-created sites so a
	// restart of serve mode re-creates them (see fleet.manifest under
	// -data-dir). manifestMu serializes read-modify-write of the blob.
	manifest   *iupdater.Store
	manifestMu sync.Mutex

	// tracer records request-scoped span traces across every route (see
	// traces.go); the same tracer is attached to the site deployments in
	// runServe so library pipelines (locate, auto-update, replication)
	// land in the same rings /traces serves.
	tracer *trace.Tracer
	// access, when non-nil, receives one structured line per request.
	access *log.Logger

	// drain is cancelled when graceful shutdown begins (wired to
	// http.Server.RegisterOnShutdown), so parked records long-polls end
	// immediately instead of holding the drain open until their wait
	// deadline.
	drain       context.Context
	cancelDrain context.CancelFunc
}

func newServer(workers int) *server {
	drain, cancelDrain := context.WithCancel(context.Background())
	return &server{
		fleet:       iupdater.NewFleet(),
		sites:       make(map[string]*site),
		workers:     workers,
		tracer:      newServeTracer(0),
		drain:       drain,
		cancelDrain: cancelDrain,
	}
}

// addSite registers a fully wired site (monitor already attached if
// wanted), handing its deployment and monitor to the fleet — which owns
// their lifecycle from here on, including LRU parking. The first site
// added becomes the default for the alias routes. Safe to call while
// the handler is serving.
func (s *server) addSite(st *site) error {
	var fs *iupdater.Site
	var err error
	if st.rep != nil {
		fs, err = s.fleet.AddReplica(st.name, st.rep)
	} else {
		fs, err = s.fleet.AddSite(st.name, iupdater.SiteConfig{
			Deployment:     st.d,
			Monitor:        st.mon,
			MonitorFactory: st.monFactory,
		})
	}
	if err != nil {
		return err
	}
	st.fs = fs
	st.d, st.mon = nil, nil
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sites[st.name]; dup {
		// The fleet would have rejected the duplicate first; belt and
		// braces for a racing registration.
		return fmt.Errorf("site %q already registered", st.name)
	}
	s.sites[st.name] = st
	if s.def == nil {
		s.def = st
	}
	return nil
}

// removeSite drops the site from the routing table (the fleet-side
// teardown is the caller's job). The default-site alias dies with the
// default site.
func (s *server) removeSite(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.sites, name)
	if s.def != nil && s.def.name == name {
		s.def = nil
	}
}

// site looks up a site by name under the read lock.
func (s *server) site(name string) *site {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.sites[name]
}

// siteFor resolves the request's site: the {site} path value when
// present, the default site on the alias routes. On an unknown name it
// writes the 404 and returns nil.
func (s *server) siteFor(w http.ResponseWriter, r *http.Request) *site {
	name := r.PathValue("site")
	if name == "" {
		s.mu.RLock()
		def := s.def
		s.mu.RUnlock()
		if def == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("no default site (it was removed; address sites by name)"))
		}
		return def
	}
	st := s.site(name)
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown site %q (GET /sites lists them)", name))
		return nil
	}
	return st
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	// Each pattern is registered once per supported method, plus once
	// methodless so a wrong-method hit gets an explicit 405 with an
	// Allow header listing every supported method (and the API's JSON
	// error shape) instead of the mux's implicit handling.
	type methodHandler struct {
		method string
		h      http.HandlerFunc
	}
	routes := func(pattern string, hs ...methodHandler) {
		allow := make([]string, len(hs))
		for i, mh := range hs {
			allow[i] = mh.method
			mux.HandleFunc(mh.method+" "+pattern, s.instrument(mh.method, pattern, mh.h))
		}
		mux.HandleFunc(pattern, methodNotAllowed(strings.Join(allow, ", ")))
	}
	route := func(method, pattern string, h http.HandlerFunc) {
		routes(pattern, methodHandler{method, h})
	}
	route("POST", "/locate", s.handleLocate)
	route("POST", "/update", s.handleUpdate)
	route("GET", "/snapshot", s.handleSnapshot)
	route("GET", "/drift", s.handleDrift)
	route("POST", "/rollback", s.handleRollback)
	route("GET", "/records", s.handleRecords)
	route("GET", "/sites", s.handleSites)
	route("GET", "/metrics", s.handleMetrics)
	route("GET", "/traces", s.handleTraces)
	route("GET", "/traces/{id}", s.handleTrace)
	routes("/sites/{site}",
		methodHandler{"GET", s.handleSite},
		methodHandler{"PUT", s.handleSitePut},
		methodHandler{"DELETE", s.handleSiteDelete})
	route("POST", "/sites/{site}/locate", s.handleLocate)
	route("POST", "/sites/{site}/update", s.handleUpdate)
	route("GET", "/sites/{site}/snapshot", s.handleSnapshot)
	route("GET", "/sites/{site}/drift", s.handleDrift)
	route("POST", "/sites/{site}/rollback", s.handleRollback)
	route("GET", "/sites/{site}/records", s.handleRecords)
	route("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		// A replica default site reports 0 until it has synced; so does a
		// parked or removed default site (health stays cheap: no
		// rehydration on the probe path).
		var version uint64
		s.mu.RLock()
		def := s.def
		n := len(s.sites)
		s.mu.RUnlock()
		if def != nil {
			if snap := def.snap(); snap != nil {
				version = snap.Version()
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "version": version, "sites": n})
	})
	if s.pprof {
		// Profiling of the live update/locate hot paths, opt-in via
		// -pprof: e.g. `go tool pprof http://host/debug/pprof/profile`
		// while driving POST /update traffic.
		// Methodless patterns, like net/http/pprof's own registrations:
		// the symbolization protocol POSTs to /debug/pprof/symbol.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// methodNotAllowed is the fallback handler behind every route's
// methodless pattern: anything that reaches it matched the path but not
// the method.
func methodNotAllowed(allow string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allow)
		writeJSON(w, http.StatusMethodNotAllowed,
			map[string]string{"error": fmt.Sprintf("method %s not allowed on %s (allow %s)", r.Method, r.URL.Path, allow)})
	}
}

type locateRequest struct {
	// RSS is a single online measurement (one reading per link).
	RSS []float64 `json:"rss,omitempty"`
	// Batch is a set of measurements localized against one consistent
	// snapshot; mutually exclusive with RSS.
	Batch [][]float64 `json:"batch,omitempty"`
}

type positionJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type locateResponse struct {
	Version   uint64         `json:"version"`
	Position  *positionJSON  `json:"position,omitempty"`
	Positions []positionJSON `json:"positions,omitempty"`
}

func (s *server) handleLocate(w http.ResponseWriter, r *http.Request) {
	st := s.siteFor(w, r)
	if st == nil {
		return
	}
	var req locateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if (req.RSS == nil) == (req.Batch == nil) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("provide exactly one of rss or batch"))
		return
	}
	// Pin one snapshot so the reported version matches the database every
	// estimate in the response was computed against. A writer site
	// resolves through the fleet — a parked site's first locate pays its
	// rehydration here — while a replica serves its last applied
	// snapshot.
	var snap *iupdater.Snapshot
	var lat *obs.Histogram
	var mon *iupdater.Monitor
	if st.rep != nil {
		snap = st.rep.Snapshot()
		lat = st.rep.LocateLatency()
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("replica %s has not synced from its leader yet", st.name))
			return
		}
	} else {
		d, m, ok := st.writer(w)
		if !ok {
			return
		}
		snap, lat, mon = d.Snapshot(), d.LocateLatency(), m
	}
	observe := func(rss []float64) {
		if mon != nil {
			_ = mon.Observe(rss)
		}
	}
	tr := trace.FromContext(r.Context())
	tr.Root().SetInt("version", int64(snap.Version()))
	resp := locateResponse{Version: snap.Version()}
	if req.RSS != nil {
		start := time.Now()
		var p iupdater.Position
		var err error
		if tr != nil {
			sp := tr.StartSpan("omp.solve")
			var ls iupdater.LocateStats
			p, ls, err = snap.LocateWithStats(req.RSS)
			sp.SetStr("tier", ls.Tier)
			sp.SetInt("column_evals", int64(ls.ColumnEvals))
			sp.SetInt("shard_evals", int64(ls.ShardEvals))
			sp.SetInt("shards_visited", int64(ls.ShardsVisited))
			sp.SetInt("rounds", int64(ls.Rounds))
			sp.End()
		} else {
			p, err = snap.Locate(req.RSS)
		}
		lat.Observe(time.Since(start).Seconds())
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		observe(req.RSS)
		resp.Position = &positionJSON{X: p.X, Y: p.Y}
	} else {
		start := time.Now()
		sp := tr.StartSpan("locate.batch")
		sp.SetInt("measurements", int64(len(req.Batch)))
		sp.SetInt("workers", int64(s.workers))
		ps, err := snap.LocateBatch(r.Context(), req.Batch, s.workers)
		sp.End()
		lat.Observe(time.Since(start).Seconds())
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		for _, rss := range req.Batch {
			observe(rss)
		}
		resp.Positions = make([]positionJSON, len(ps))
		for i, p := range ps {
			resp.Positions[i] = positionJSON{X: p.X, Y: p.Y}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type updateRequest struct {
	// Days advances the simulated deployment clock and lets the testbed
	// take the measurements (demo mode). Ignored when raw matrices are
	// provided.
	Days float64 `json:"days,omitempty"`
	// NoDecrease, Known and References are the raw update inputs
	// (row-major: [link][location]) for callers with real measurements.
	NoDecrease [][]float64 `json:"no_decrease,omitempty"`
	Known      [][]bool    `json:"known,omitempty"`
	References [][]float64 `json:"references,omitempty"`
}

type updateResponse struct {
	Version    uint64 `json:"version"`
	References []int  `json:"references"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	st := s.siteFor(w, r)
	if st == nil || st.readOnly(w) || !st.authorize(w, r) {
		return
	}
	d, _, ok := st.writer(w)
	if !ok {
		return
	}
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	refs, err := d.ReferenceLocations()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	// The request trace (if sampled) becomes the update pipeline's
	// trace: UpdateTraced records reconstruct → persist → swap spans
	// under it, so one tree covers HTTP entry through publish.
	tr := trace.FromContext(r.Context())
	var noDec, xr iupdater.Matrix
	var known iupdater.Mask
	var at time.Duration
	if req.References != nil {
		if noDec, err = iupdater.MatrixFromRows(req.NoDecrease); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("no_decrease: %w", err))
			return
		}
		if known, err = iupdater.MaskFromRows(req.Known); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("known: %w", err))
			return
		}
		if xr, err = iupdater.MatrixFromRows(req.References); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("references: %w", err))
			return
		}
	} else {
		if req.Days <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("provide days > 0 or raw measurement matrices"))
			return
		}
		// The lock both freezes the clock and serializes the testbed
		// measurements against the monitor's sampler. The measurement is
		// this path's sample stage: its span and the stage histogram see
		// the same duration.
		sp := tr.StartSpan("sample")
		sp.SetInt("references", int64(len(refs)))
		t0 := time.Now()
		st.mu.Lock()
		at = st.clock + time.Duration(req.Days*float64(24*time.Hour))
		noDec = st.tb.NoDecreaseMatrix(at)
		known = st.tb.Mask()
		xr, _ = st.tb.ReferenceMatrix(at, refs)
		st.mu.Unlock()
		el := time.Since(t0)
		sp.EndDur(el)
		if h := d.UpdateStageLatency(iupdater.StageSample); h != nil {
			h.Observe(el.Seconds())
		}
	}
	snap, err := d.UpdateTraced(tr, noDec, known, xr)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if at > 0 {
		// Advance the simulated clock only once the update succeeded, so
		// a failed request can be retried at the same elapsed time.
		st.mu.Lock()
		if at > st.clock {
			st.clock = at
		}
		st.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, updateResponse{Version: snap.Version(), References: refs})
}

// recordJSON mirrors iupdater.RecordInfo over the wire: how one stored
// version sits on disk (full snapshot or changed-columns delta).
type recordJSON struct {
	Version uint64 `json:"version"`
	Kind    string `json:"kind"`
	Bytes   int64  `json:"bytes"`
}

type snapshotResponse struct {
	Version      uint64      `json:"version"`
	Links        int         `json:"links"`
	Cells        int         `json:"cells"`
	Fingerprints [][]float64 `json:"fingerprints"`
	// Record describes the serving version's on-disk record, absent for
	// in-memory sites.
	Record *recordJSON `json:"record,omitempty"`
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	st := s.siteFor(w, r)
	if st == nil {
		return
	}
	var snap *iupdater.Snapshot
	var d *iupdater.Deployment
	if st.rep != nil {
		snap = st.rep.Snapshot()
		if snap == nil {
			writeError(w, http.StatusServiceUnavailable,
				fmt.Errorf("replica %s has not synced from its leader yet", st.name))
			return
		}
	} else {
		var ok bool
		if d, _, ok = st.writer(w); !ok {
			return
		}
		snap = d.Snapshot()
	}
	fp := snap.Fingerprints()
	resp := snapshotResponse{
		Version:      snap.Version(),
		Links:        fp.Rows(),
		Cells:        fp.Cols(),
		Fingerprints: fp.ToRows(),
	}
	if st.rep != nil {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if store := d.Store(); store != nil {
		for _, rec := range store.Records() {
			if rec.Version == snap.Version() {
				resp.Record = &recordJSON{Version: rec.Version, Kind: rec.Kind, Bytes: rec.Bytes}
				break
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// driftResponse mirrors iupdater.MonitorStats over the wire.
type driftResponse struct {
	Queries           uint64          `json:"queries"`
	Residual          float64         `json:"residual_db"`
	Score             float64         `json:"score"`
	Detections        uint64          `json:"detections"`
	UpdatesTriggered  uint64          `json:"updates_triggered"`
	UpdatesCompleted  uint64          `json:"updates_completed"`
	UpdateErrors      uint64          `json:"update_errors"`
	Suppressed        uint64          `json:"suppressed"`
	CooldownRemaining int             `json:"cooldown_remaining"`
	TopLinks          []linkDriftJSON `json:"top_links,omitempty"`
	UpdateInFlight    bool            `json:"update_in_flight"`
	Version           uint64          `json:"version"`
	LastError         string          `json:"last_error,omitempty"`
	// LastUpdateTrace is the trace ID of the most recent drift-triggered
	// auto-update, fetchable at GET /traces/{id}.
	LastUpdateTrace string `json:"last_update_trace,omitempty"`
}

// linkDriftJSON mirrors iupdater.LinkDrift: one offending link in the
// monitor's per-link residual attribution.
type linkDriftJSON struct {
	Link  int     `json:"link"`
	ErrDB float64 `json:"err_db"`
}

func driftJSON(stats iupdater.MonitorStats) driftResponse {
	out := driftResponse{
		Queries:           stats.Queries,
		Residual:          stats.Residual,
		Score:             stats.Score,
		Detections:        stats.Detections,
		UpdatesTriggered:  stats.UpdatesTriggered,
		UpdatesCompleted:  stats.UpdatesCompleted,
		UpdateErrors:      stats.UpdateErrors,
		Suppressed:        stats.Suppressed,
		CooldownRemaining: stats.CooldownRemaining,
		UpdateInFlight:    stats.UpdateInFlight,
		Version:           stats.SnapshotVersion,
		LastError:         stats.LastError,
		LastUpdateTrace:   stats.LastUpdateTraceID,
	}
	for _, ld := range stats.TopLinks {
		out.TopLinks = append(out.TopLinks, linkDriftJSON{Link: ld.Link, ErrDB: ld.ErrDB})
	}
	return out
}

func (s *server) handleDrift(w http.ResponseWriter, r *http.Request) {
	st := s.siteFor(w, r)
	if st == nil {
		return
	}
	if st.rep != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("drift monitor disabled (start with -monitor)"))
		return
	}
	_, mon, ok := st.writer(w)
	if !ok {
		return
	}
	if mon == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("drift monitor disabled (start with -monitor)"))
		return
	}
	writeJSON(w, http.StatusOK, driftJSON(mon.Stats()))
}

type rollbackResponse struct {
	// Version is the newly published snapshot version.
	Version uint64 `json:"version"`
	// RestoredVersion is the stored version whose fingerprints it
	// republishes.
	RestoredVersion uint64 `json:"restored_version"`
}

func (s *server) handleRollback(w http.ResponseWriter, r *http.Request) {
	st := s.siteFor(w, r)
	if st == nil || st.readOnly(w) || !st.authorize(w, r) {
		return
	}
	vstr := r.URL.Query().Get("version")
	if vstr == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("provide ?version=N (GET /sites/%s lists retained versions)", st.name))
		return
	}
	version, err := strconv.ParseUint(vstr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("version %q: %w", vstr, err))
		return
	}
	d, _, ok := st.writer(w)
	if !ok {
		return
	}
	snap, err := d.Rollback(version)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, rollbackResponse{Version: snap.Version(), RestoredVersion: version})
}

// handleRecords streams a site's snapshot record log to follower
// replicas (the leader side of replication; see
// iupdater.Deployment.ServeRecords for the protocol). Replica sites do
// not re-serve records, and in-memory sites have no log to stream.
func (s *server) handleRecords(w http.ResponseWriter, r *http.Request) {
	st := s.siteFor(w, r)
	if st == nil {
		return
	}
	if st.rep != nil {
		writeError(w, http.StatusConflict,
			fmt.Errorf("site %s is a replica; fetch records from its leader %s", st.name, st.rep.Source()))
		return
	}
	d, _, ok := st.writer(w)
	if !ok {
		return
	}
	if d.Store() == nil {
		writeError(w, http.StatusNotImplemented,
			fmt.Errorf("site %s has no durable store to replicate from (start with -data-dir)", st.name))
		return
	}
	// Derive the request context from the drain signal: Shutdown does
	// not cancel in-flight request contexts, and a follower's long-poll
	// would otherwise pin the graceful drain until its wait expires.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.drain, cancel)
	defer stop()
	d.ServeRecords().ServeHTTP(w, r.WithContext(ctx))
}

// siteSummaryJSON mirrors iupdater.SiteSummary over the wire.
type siteSummaryJSON struct {
	Name    string `json:"name"`
	Version uint64 `json:"version"`
	Links   int    `json:"links"`
	Cells   int    `json:"cells"`
	Durable bool   `json:"durable"`
	// Hydrated reports whether the site's deployment is resident in
	// memory; a parked site still serves, paying a rehydration from its
	// store on the first query.
	Hydrated bool `json:"hydrated"`
	// OldestVersion is the store's compaction horizon (0 for in-memory
	// sites): rollback and replication resume cannot reach below it.
	OldestVersion  uint64             `json:"oldest_version,omitempty"`
	StoredVersions []uint64           `json:"stored_versions,omitempty"`
	StoredRecords  []recordJSON       `json:"stored_records,omitempty"`
	Search         *searchSummaryJSON `json:"search,omitempty"`
	Drift          *driftResponse     `json:"drift,omitempty"`
	Replica        *replicaStatusJSON `json:"replica,omitempty"`
}

// searchSummaryJSON mirrors iupdater.SearchSummary: the serving
// snapshot's candidate-search tier and its cumulative work counters
// (reset on every publish — each version carries a fresh index).
type searchSummaryJSON struct {
	Tier        string `json:"tier"`
	Queries     uint64 `json:"queries"`
	ColumnEvals uint64 `json:"column_evals"`
	ShardEvals  uint64 `json:"shard_evals"`
}

// replicaStatusJSON mirrors iupdater.ReplicaStatus over the wire: the
// replication lag line of the fleet dashboard.
type replicaStatusJSON struct {
	Source        string `json:"source"`
	Version       uint64 `json:"version"`
	LeaderVersion uint64 `json:"leader_version"`
	Lag           uint64 `json:"lag"`
	Reconnects    uint64 `json:"reconnects"`
	Rebootstraps  uint64 `json:"rebootstraps"`
	Promoted      bool   `json:"promoted,omitempty"`
}

func siteSummaryResponse(sum iupdater.SiteSummary) siteSummaryJSON {
	out := siteSummaryJSON{
		Name:           sum.Name,
		Version:        sum.Version,
		Links:          sum.Links,
		Cells:          sum.Cells,
		Durable:        sum.Durable,
		Hydrated:       sum.Hydrated,
		OldestVersion:  sum.OldestVersion,
		StoredVersions: sum.StoredVersions,
	}
	for _, rec := range sum.StoredRecords {
		out.StoredRecords = append(out.StoredRecords, recordJSON{Version: rec.Version, Kind: rec.Kind, Bytes: rec.Bytes})
	}
	if sum.Search != nil {
		out.Search = &searchSummaryJSON{
			Tier:        sum.Search.Tier,
			Queries:     sum.Search.Stats.Queries,
			ColumnEvals: sum.Search.Stats.ColumnEvals,
			ShardEvals:  sum.Search.Stats.ShardEvals,
		}
	}
	if sum.Drift != nil {
		dr := driftJSON(*sum.Drift)
		out.Drift = &dr
	}
	if sum.Replica != nil {
		out.Replica = &replicaStatusJSON{
			Source:        sum.Replica.Source,
			Version:       sum.Replica.Version,
			LeaderVersion: sum.Replica.LeaderVersion,
			Lag:           sum.Replica.Lag,
			Reconnects:    sum.Replica.Reconnects,
			Rebootstraps:  sum.Replica.Rebootstraps,
			Promoted:      sum.Replica.Promoted,
		}
	}
	return out
}

type sitesResponse struct {
	Sites []siteSummaryJSON `json:"sites"`
}

func (s *server) handleSites(w http.ResponseWriter, r *http.Request) {
	sums := s.fleet.Summaries()
	resp := sitesResponse{Sites: make([]siteSummaryJSON, len(sums))}
	for i, sum := range sums {
		resp.Sites[i] = siteSummaryResponse(sum)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleSite(w http.ResponseWriter, r *http.Request) {
	fs, ok := s.fleet.Site(r.PathValue("site"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown site %q (GET /sites lists them)", r.PathValue("site")))
		return
	}
	writeJSON(w, http.StatusOK, siteSummaryResponse(fs.Summary()))
}

// sitePutRequest creates one site over the API. All fields are
// optional: env defaults to the serve-time -env, seed to 1, token to
// open access, monitor to the -monitor flag.
type sitePutRequest struct {
	Env string `json:"env,omitempty"`
	// Seed seeds the site's simulated testbed.
	Seed uint64 `json:"seed,omitempty"`
	// Token, when set, is required as "Authorization: Bearer <token>" on
	// the site's mutating routes (update, rollback, delete).
	Token   string `json:"token,omitempty"`
	Monitor bool   `json:"monitor,omitempty"`
}

// handleSitePut creates a site at runtime: PUT /sites/{site}. The site
// is surveyed (or warm-started from an existing store directory under
// -data-dir), registered with the fleet — becoming subject to the
// snapshot LRU like any boot-time site — and recorded in the fleet
// manifest so a serve restart re-creates it.
func (s *server) handleSitePut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("site")
	if err := checkSiteName(name); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.site(name) != nil {
		writeError(w, http.StatusConflict, fmt.Errorf("site %q already exists (DELETE it first to replace it)", name))
		return
	}
	var req sitePutRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.Env == "" {
		req.Env = s.defEnv
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	opts := []iupdater.Option{
		iupdater.WithWorkers(s.workers), iupdater.WithUpdateConcurrency(s.updateConc),
		iupdater.WithTracer(s.tracer, name),
	}
	st, warm, err := buildSite(siteSpec{name: name, env: req.Env}, req.Seed, s.dataDir, s.retain, opts)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	st.token = req.Token
	if req.Monitor || s.monitorOn {
		if err := st.enableMonitor(); err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
	}
	if err := s.addSite(st); err != nil {
		// Lost a race with a concurrent PUT for the same name.
		writeError(w, http.StatusConflict, err)
		return
	}
	s.manifestAdd(manifestEntry{Name: name, Env: req.Env, Seed: req.Seed, Token: req.Token, Monitor: req.Monitor || s.monitorOn})
	log.Printf("site %s: created via API (%s, seed %d, warm=%v)", name, req.Env, req.Seed, warm)
	fs, _ := s.fleet.Site(name)
	writeJSON(w, http.StatusCreated, siteSummaryResponse(fs.Summary()))
}

// handleSiteDelete removes a site at runtime: DELETE /sites/{site}.
// The fleet tears it down — monitor stopped, store closed — and its
// manifest entry is dropped; the store directory itself is kept, so a
// later PUT of the same name warm-starts from it.
func (s *server) handleSiteDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("site")
	st := s.site(name)
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown site %q (GET /sites lists them)", name))
		return
	}
	if st.readOnly(w) || !st.authorize(w, r) {
		return
	}
	if err := s.fleet.RemoveSite(name); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.removeSite(name)
	s.manifestRemove(name)
	log.Printf("site %s: removed via API", name)
	writeJSON(w, http.StatusOK, map[string]any{"removed": name})
}

// manifestEntry is one API-created site's durable config: everything a
// serve restart needs to re-create the site exactly as PUT defined it.
// Boot-time sites are not recorded — their config lives in the flags.
type manifestEntry struct {
	Name    string `json:"name"`
	Env     string `json:"env"`
	Seed    uint64 `json:"seed"`
	Token   string `json:"token,omitempty"`
	Monitor bool   `json:"monitor,omitempty"`
}

// manifestLoad reads the manifest blob; a missing or torn blob is an
// empty manifest. Callers hold manifestMu.
func (s *server) manifestLoad() []manifestEntry {
	if s.manifest == nil {
		return nil
	}
	blob, ok, err := s.manifest.LoadState("manifest")
	if err != nil || !ok {
		return nil
	}
	var entries []manifestEntry
	if err := json.Unmarshal(blob, &entries); err != nil {
		log.Printf("fleet manifest: ignoring corrupt blob: %v", err)
		return nil
	}
	return entries
}

func (s *server) manifestSave(entries []manifestEntry) {
	blob, err := json.Marshal(entries)
	if err == nil {
		err = s.manifest.SaveState("manifest", blob)
	}
	if err != nil {
		// The site still runs; it just won't be re-created on restart.
		log.Printf("fleet manifest: persisting: %v", err)
	}
}

func (s *server) manifestAdd(e manifestEntry) {
	if s.manifest == nil {
		return
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	entries := s.manifestLoad()
	for i := range entries {
		if entries[i].Name == e.Name {
			entries[i] = e
			s.manifestSave(entries)
			return
		}
	}
	s.manifestSave(append(entries, e))
}

// restoreManifestSites re-creates the API-defined sites the fleet
// manifest recorded in a previous serve life. Flag-defined sites win
// name conflicts — the stale manifest entry is dropped so the flags
// stay authoritative. A site that fails to build (say its environment
// no longer exists) is logged and skipped with its entry kept, never
// failing the boot.
func (s *server) restoreManifestSites() error {
	if s.manifest == nil {
		return nil
	}
	s.manifestMu.Lock()
	entries := s.manifestLoad()
	s.manifestMu.Unlock()
	for _, e := range entries {
		if s.site(e.Name) != nil {
			s.manifestRemove(e.Name)
			continue
		}
		opts := []iupdater.Option{
			iupdater.WithWorkers(s.workers), iupdater.WithUpdateConcurrency(s.updateConc),
			iupdater.WithTracer(s.tracer, e.Name),
		}
		st, warm, err := buildSite(siteSpec{name: e.Name, env: e.Env}, e.Seed, s.dataDir, s.retain, opts)
		if err != nil {
			log.Printf("site %s: manifest restore failed (entry kept): %v", e.Name, err)
			continue
		}
		st.token = e.Token
		if e.Monitor {
			if err := st.enableMonitor(); err != nil {
				return err
			}
		}
		if err := s.addSite(st); err != nil {
			return err
		}
		log.Printf("site %s: restored from fleet manifest (%s, seed %d, warm=%v)", e.Name, e.Env, e.Seed, warm)
	}
	return nil
}

func (s *server) manifestRemove(name string) {
	if s.manifest == nil {
		return
	}
	s.manifestMu.Lock()
	defer s.manifestMu.Unlock()
	entries := s.manifestLoad()
	kept := entries[:0]
	for _, e := range entries {
		if e.Name != name {
			kept = append(kept, e)
		}
	}
	if len(kept) != len(entries) {
		s.manifestSave(kept)
	}
}

// handleMetrics serves the fleet-wide Prometheus text exposition
// (format 0.0.4). Every family is written once — HELP and TYPE ahead of
// the samples — with one sample (or bucket series) per site, labeled
// site="<name>". Search counters add the serving tier, per-link drift
// attribution adds the link index. Families a site has no data for
// (drift on an unmonitored site, replication on a writer) simply have
// no sample for that site.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sums := s.fleet.Summaries()
	var buf bytes.Buffer
	mw := obs.NewWriter(&buf)
	site := func(name string) obs.Label { return obs.Label{Name: "site", Value: name} }

	mw.Family("iupdater_locate_latency_seconds", "histogram", "End-to-end locate latency in seconds, snapshot load included.")
	for _, sum := range sums {
		// A parked site's histogram is released with its deployment, and a
		// site the fleet knows but the router no longer does (removal
		// racing the scrape) simply has no sample — scrapes never
		// rehydrate.
		if st := s.site(sum.Name); st != nil {
			if lat := st.latency(); lat != nil {
				mw.Histogram("iupdater_locate_latency_seconds", lat.Snapshot(), site(sum.Name))
			}
		}
	}

	mw.Family("iupdater_snapshot_version", "gauge", "Serving fingerprint snapshot version (0 for an unsynced replica).")
	for _, sum := range sums {
		mw.Sample("iupdater_snapshot_version", float64(sum.Version), site(sum.Name))
	}

	// Update-pipeline stage latency (writer sites only), fed from the
	// same measured durations the pipeline's trace spans record — the
	// histogram and a captured trace cannot disagree.
	mw.Family("iupdater_update_duration_seconds", "histogram",
		"Update pipeline stage latency in seconds, by stage (sample, reconstruct, persist, swap).")
	for _, sum := range sums {
		st := s.site(sum.Name)
		if st == nil || st.rep != nil {
			continue
		}
		d := st.deployment()
		if d == nil {
			continue
		}
		for _, stage := range iupdater.UpdateStages() {
			if h := d.UpdateStageLatency(stage); h != nil {
				mw.Histogram("iupdater_update_duration_seconds", h.Snapshot(),
					site(sum.Name), obs.Label{Name: "stage", Value: stage})
			}
		}
	}
	mw.Family("iupdater_publish_total", "counter", "Snapshot publishes made visible to queries (updates, installs, rollbacks).")
	for _, sum := range sums {
		st := s.site(sum.Name)
		if st == nil || st.rep != nil {
			continue
		}
		if d := st.deployment(); d != nil {
			mw.Sample("iupdater_publish_total", float64(d.Publishes()), site(sum.Name))
		}
	}

	// Candidate-search work, labeled with the serving snapshot's tier.
	// The counters reset on every publish: each snapshot version carries
	// a fresh index (Prometheus handles counter resets natively).
	searchFamilies := []struct {
		name, help string
		value      func(iupdater.SearchStats) uint64
	}{
		{"iupdater_search_queries_total", "Candidate searches answered by the serving snapshot.",
			func(st iupdater.SearchStats) uint64 { return st.Queries }},
		{"iupdater_search_column_evals_total", "Full fingerprint-column distance evaluations by the serving snapshot.",
			func(st iupdater.SearchStats) uint64 { return st.ColumnEvals }},
		{"iupdater_search_shard_evals_total", "Coarse shard-routing evaluations by the serving snapshot.",
			func(st iupdater.SearchStats) uint64 { return st.ShardEvals }},
	}
	for _, fam := range searchFamilies {
		mw.Family(fam.name, "counter", fam.help)
		for _, sum := range sums {
			if sum.Search == nil {
				continue
			}
			mw.Sample(fam.name, float64(fam.value(sum.Search.Stats)),
				site(sum.Name), obs.Label{Name: "tier", Value: sum.Search.Tier})
		}
	}

	driftGauges := []struct {
		name, help string
		value      func(*iupdater.MonitorStats) float64
	}{
		{"iupdater_drift_residual_db", "Latest per-query residual against the serving fingerprints (dB).",
			func(st *iupdater.MonitorStats) float64 { return st.Residual }},
		{"iupdater_drift_score", "Current drift-detector score.",
			func(st *iupdater.MonitorStats) float64 { return st.Score }},
		{"iupdater_drift_cooldown_remaining", "Queries left before the monitor may trigger another update.",
			func(st *iupdater.MonitorStats) float64 { return float64(st.CooldownRemaining) }},
	}
	for _, fam := range driftGauges {
		mw.Family(fam.name, "gauge", fam.help)
		for _, sum := range sums {
			if sum.Drift == nil {
				continue
			}
			mw.Sample(fam.name, fam.value(sum.Drift), site(sum.Name))
		}
	}
	driftCounters := []struct {
		name, help string
		value      func(*iupdater.MonitorStats) uint64
	}{
		{"iupdater_drift_queries_total", "Measurements observed by the drift monitor.",
			func(st *iupdater.MonitorStats) uint64 { return st.Queries }},
		{"iupdater_drift_detections_total", "Drift detections (post-hysteresis).",
			func(st *iupdater.MonitorStats) uint64 { return st.Detections }},
		{"iupdater_drift_updates_triggered_total", "Automatic updates the monitor started.",
			func(st *iupdater.MonitorStats) uint64 { return st.UpdatesTriggered }},
		{"iupdater_drift_updates_completed_total", "Automatic updates that published a new snapshot.",
			func(st *iupdater.MonitorStats) uint64 { return st.UpdatesCompleted }},
		{"iupdater_drift_update_errors_total", "Automatic updates that failed.",
			func(st *iupdater.MonitorStats) uint64 { return st.UpdateErrors }},
		{"iupdater_drift_detections_suppressed_total", "Detections suppressed by cooldown or an in-flight update.",
			func(st *iupdater.MonitorStats) uint64 { return st.Suppressed }},
	}
	for _, fam := range driftCounters {
		mw.Family(fam.name, "counter", fam.help)
		for _, sum := range sums {
			if sum.Drift == nil {
				continue
			}
			mw.Sample(fam.name, float64(fam.value(sum.Drift)), site(sum.Name))
		}
	}

	mw.Family("iupdater_drift_link_error_db", "gauge", "Per-link EWMA residual attribution for the top offending links (dB).")
	for _, sum := range sums {
		if sum.Drift == nil {
			continue
		}
		for _, ld := range sum.Drift.TopLinks {
			mw.Sample("iupdater_drift_link_error_db", ld.ErrDB,
				site(sum.Name), obs.Label{Name: "link", Value: strconv.Itoa(ld.Link)})
		}
	}

	mw.Family("iupdater_store_bytes", "gauge", "On-disk bytes across the store's retained snapshot records.")
	for _, sum := range sums {
		if !sum.Durable {
			continue
		}
		var total int64
		for _, rec := range sum.StoredRecords {
			total += rec.Bytes
		}
		mw.Sample("iupdater_store_bytes", float64(total), site(sum.Name))
	}
	mw.Family("iupdater_store_records", "gauge", "Retained snapshot records by kind (full or delta).")
	for _, sum := range sums {
		if !sum.Durable {
			continue
		}
		byKind := map[string]int{"full": 0, "delta": 0}
		for _, rec := range sum.StoredRecords {
			byKind[rec.Kind]++
		}
		for _, kind := range []string{"full", "delta"} {
			mw.Sample("iupdater_store_records", float64(byKind[kind]),
				site(sum.Name), obs.Label{Name: "kind", Value: kind})
		}
	}
	mw.Family("iupdater_store_compactions_total", "counter", "Log rewrites that dropped history (manual and retention-driven).")
	for _, sum := range sums {
		st := s.site(sum.Name)
		if st == nil || st.rep != nil {
			continue
		}
		d := st.deployment()
		if d == nil || d.Store() == nil {
			continue
		}
		mw.Sample("iupdater_store_compactions_total", float64(d.Store().Compactions()), site(sum.Name))
	}

	// Fleet lifecycle: registrations versus what the snapshot LRU keeps
	// resident, and the cost of bringing parked sites back.
	fstats := s.fleet.Stats()
	mw.Family("iupdater_sites", "gauge", "Registered sites by residency state (resident in memory vs parked on store).")
	mw.Sample("iupdater_sites", float64(fstats.Resident), obs.Label{Name: "state", Value: "resident"})
	mw.Sample("iupdater_sites", float64(fstats.Sites-fstats.Resident), obs.Label{Name: "state", Value: "parked"})
	mw.Family("iupdater_site_evictions_total", "counter", "Sites parked by the resident-limit LRU (deployment released, store retained).")
	mw.Sample("iupdater_site_evictions_total", float64(fstats.Evictions))
	mw.Family("iupdater_site_rehydrations_total", "counter", "Parked sites re-materialized from their stores on demand.")
	mw.Sample("iupdater_site_rehydrations_total", float64(fstats.Rehydrations))
	mw.Family("iupdater_site_rehydration_seconds", "histogram", "Latency of re-materializing a parked site from its store, in seconds.")
	mw.Histogram("iupdater_site_rehydration_seconds", s.fleet.RehydrationLatency().Snapshot())

	replicaGauges := []struct {
		name, help string
		value      func(*iupdater.ReplicaStatus) float64
	}{
		{"iupdater_replica_applied_version", "Newest snapshot version the follower has applied.",
			func(st *iupdater.ReplicaStatus) float64 { return float64(st.Version) }},
		{"iupdater_replica_leader_version", "Newest snapshot version the leader has advertised.",
			func(st *iupdater.ReplicaStatus) float64 { return float64(st.LeaderVersion) }},
		{"iupdater_replica_lag_versions", "Replication lag in snapshot versions.",
			func(st *iupdater.ReplicaStatus) float64 { return float64(st.Lag) }},
	}
	for _, fam := range replicaGauges {
		mw.Family(fam.name, "gauge", fam.help)
		for _, sum := range sums {
			if sum.Replica == nil {
				continue
			}
			mw.Sample(fam.name, fam.value(sum.Replica), site(sum.Name))
		}
	}
	replicaCounters := []struct {
		name, help string
		value      func(*iupdater.ReplicaStatus) uint64
	}{
		{"iupdater_replica_reconnects_total", "Failed leader polls, each retried over a fresh connection.",
			func(st *iupdater.ReplicaStatus) uint64 { return st.Reconnects }},
		{"iupdater_replica_rebootstraps_total", "Re-bootstraps from the leader's newest full record.",
			func(st *iupdater.ReplicaStatus) uint64 { return st.Rebootstraps }},
	}
	for _, fam := range replicaCounters {
		mw.Family(fam.name, "counter", fam.help)
		for _, sum := range sums {
			if sum.Replica == nil {
				continue
			}
			mw.Sample(fam.name, float64(fam.value(sum.Replica)), site(sum.Name))
		}
	}

	mw.Family("iupdater_traces_started_total", "counter", "Request traces begun across all routes and pipelines (sampled or not).")
	mw.Family("iupdater_traces_retained_total", "counter", "Traces retained in the recent ring (head-sampled, slow or forced).")
	mw.Family("iupdater_traces_slow_total", "counter", "Retained traces that met their path's slow threshold.")
	ts := s.tracer.Stats()
	mw.Sample("iupdater_traces_started_total", float64(ts.Started))
	mw.Sample("iupdater_traces_retained_total", float64(ts.Retained))
	mw.Sample("iupdater_traces_slow_total", float64(ts.Slow))

	mw.Family("iupdater_build_info", "gauge", "Build metadata of the serving binary; the value is always 1.")
	mw.Sample("iupdater_build_info", 1,
		obs.Label{Name: "version", Value: buildVersion()},
		obs.Label{Name: "goversion", Value: runtime.Version()})

	// Go runtime health, read through runtime/metrics (names are
	// version-checked: a metric the runtime no longer exports is simply
	// omitted rather than reported as zero).
	runtimeGauges := []struct {
		name, help, metric string
	}{
		{"iupdater_goroutines", "Live goroutines in the serving process.", "/sched/goroutines:goroutines"},
		{"iupdater_heap_bytes", "Bytes of live heap objects.", "/memory/classes/heap/objects:bytes"},
	}
	rsamples := make([]runtimemetrics.Sample, len(runtimeGauges))
	for i, g := range runtimeGauges {
		rsamples[i].Name = g.metric
	}
	runtimemetrics.Read(rsamples)
	for i, g := range runtimeGauges {
		mw.Family(g.name, "gauge", g.help)
		switch rsamples[i].Value.Kind() {
		case runtimemetrics.KindUint64:
			mw.Sample(g.name, float64(rsamples[i].Value.Uint64()))
		case runtimemetrics.KindFloat64:
			mw.Sample(g.name, rsamples[i].Value.Float64())
		}
	}
	// Cumulative stop-the-world GC pause time; runtime/metrics only
	// exposes pause distributions, so the exact total comes from
	// MemStats (the historical Go-collector behavior on scrape).
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	mw.Family("iupdater_gc_pause_seconds_total", "counter", "Cumulative stop-the-world GC pause time in seconds.")
	mw.Sample("iupdater_gc_pause_seconds_total", float64(ms.PauseTotalNs)/1e9)

	if err := mw.Err(); err != nil {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("rendering metrics: %w", err))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf.Bytes()); err != nil {
		log.Printf("iupdater: writing metrics response: %v", err)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("iupdater: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// siteSpec is one -sites entry: a registry name and the simulated
// environment backing it.
type siteSpec struct {
	name string
	env  string
}

// parseSiteSpecs parses the -sites flag ("name=env,name=env"). An empty
// flag falls back to one site named "default" on the -env environment —
// the original single-site behavior. Names are validated here, before
// buildSite turns them into -data-dir subdirectories and runs surveys —
// Fleet.Add would reject a bad name anyway, but only after the
// filesystem and survey work had happened.
func parseSiteSpecs(spec, defaultEnv string) ([]siteSpec, error) {
	if spec == "" {
		return []siteSpec{{name: "default", env: defaultEnv}}, nil
	}
	var out []siteSpec
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		name, env, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found {
			// A bare name serves the default environment.
			env = defaultEnv
		}
		if err := checkSiteName(name); err != nil {
			return nil, fmt.Errorf("-sites: %w", err)
		}
		if seen[name] {
			return nil, fmt.Errorf("-sites: duplicate site %q", name)
		}
		seen[name] = true
		out = append(out, siteSpec{name: name, env: env})
	}
	return out, nil
}

// checkSiteName mirrors Fleet.Add's naming rule: site names become URL
// path segments and store directory names, so only letters, digits, -
// and _ are allowed.
func checkSiteName(name string) error {
	if name == "" {
		return fmt.Errorf("empty site name")
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && (r < '0' || r > '9') && r != '-' && r != '_' {
			return fmt.Errorf("site name %q: use letters, digits, - and _", name)
		}
	}
	return nil
}

// followSpec is one -follow entry: a registry name and the leader
// records URL the replica tails.
type followSpec struct {
	name string
	url  string
}

// parseFollowSpecs parses the -follow flag ("name=url,name=url"). The
// URL is required — a follower without a leader serves nothing.
func parseFollowSpecs(spec string, taken map[string]bool) ([]followSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var out []followSpec
	for _, part := range strings.Split(spec, ",") {
		name, url, found := strings.Cut(strings.TrimSpace(part), "=")
		if !found || url == "" {
			return nil, fmt.Errorf("-follow: %q: want name=records-url (e.g. branch=http://leader:8080/records)", part)
		}
		if err := checkSiteName(name); err != nil {
			return nil, fmt.Errorf("-follow: %w", err)
		}
		if taken[name] {
			return nil, fmt.Errorf("-follow: duplicate site %q", name)
		}
		taken[name] = true
		out = append(out, followSpec{name: name, url: url})
	}
	return out, nil
}

// buildSite wires one site: a testbed for its environment, and either a
// warm restart from its store directory (when dataDir is set and holds
// snapshots) or a fresh survey persisted into it. Returns the site and
// whether it warm-started.
func buildSite(spec siteSpec, seed uint64, dataDir string, retain int, opts []iupdater.Option) (*site, bool, error) {
	env, err := pickEnv(spec.env)
	if err != nil {
		return nil, false, fmt.Errorf("site %s: %w", spec.name, err)
	}
	tb := iupdater.NewTestbed(env, seed)
	var st *iupdater.Store
	if dataDir != "" {
		st, err = iupdater.OpenStore(filepath.Join(dataDir, spec.name), iupdater.WithRetention(retain))
		if err != nil {
			return nil, false, fmt.Errorf("site %s: %w", spec.name, err)
		}
		if st.LatestVersion() > 0 {
			d, err := iupdater.OpenDeployment(st, opts...)
			if err != nil {
				st.Close()
				return nil, false, fmt.Errorf("site %s: %w", spec.name, err)
			}
			if d.Geometry() != tb.Geometry() {
				st.Close()
				return nil, false, fmt.Errorf("site %s: stored geometry %+v does not match environment %s (%+v)",
					spec.name, d.Geometry(), env.Name(), tb.Geometry())
			}
			return newSite(spec.name, d, tb), true, nil
		}
	}
	if st != nil {
		opts = append(opts, iupdater.WithStore(st))
	}
	d, _, err := tb.Deploy(0, 50, opts...)
	if err != nil {
		if st != nil {
			st.Close()
		}
		return nil, false, fmt.Errorf("site %s: %w", spec.name, err)
	}
	return newSite(spec.name, d, tb), false, nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	envName := envFlag(fs)
	seed := fs.Uint64("seed", 1, "deployment seed (site i uses seed+i)")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "batch-locate worker pool size (0 = GOMAXPROCS)")
	updateConc := fs.Int("update-concurrency", 1, "ALS sweep workers for Update (0 = GOMAXPROCS, 1 = sequential)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	monitorOn := fs.Bool("monitor", false, "auto-update: detect drift from /locate traffic and refresh each site's database")
	dataDir := fs.String("data-dir", "", "durable snapshot root (one store directory per site); empty = in-memory")
	retain := fs.Int("retain", 0, "snapshot versions retained per site store (0 = all)")
	sitesFlag := fs.String("sites", "", "comma-separated name=env site list (default: one site 'default' on -env)")
	resident := fs.Int("resident", 0, "max sites kept materialized in memory; excess durable sites are parked on their stores and rehydrate on demand (0 = all resident)")
	followFlag := fs.String("follow", "", "comma-separated name=url read-only replica sites tailing a leader's records endpoint")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	accessLog := fs.Bool("access-log", false, "log one structured line per request (method, route, site, status, duration, trace ID)")
	traceHead := fs.Int("trace-head", 100, "head-sample 1 in N request traces into GET /traces (0 = slow and forced traces only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := parseSiteSpecs(*sitesFlag, *envName)
	if err != nil {
		return err
	}
	taken := make(map[string]bool)
	for _, spec := range specs {
		taken[spec.name] = true
	}
	follows, err := parseFollowSpecs(*followFlag, taken)
	if err != nil {
		return err
	}

	s := newServer(*workers)
	if *resident > 0 {
		s.fleet = iupdater.NewFleet(iupdater.WithResidentLimit(*resident))
	}
	s.pprof = *pprofOn
	s.tracer = newServeTracer(*traceHead)
	s.dataDir = *dataDir
	s.retain = *retain
	s.updateConc = *updateConc
	s.monitorOn = *monitorOn
	s.defEnv = *envName
	if *accessLog {
		s.access = log.New(os.Stderr, "", log.LstdFlags|log.Lmicroseconds)
	}
	if *dataDir != "" {
		// The fleet manifest store durably records API-created sites.
		// "fleet.manifest" cannot collide with a site's store directory:
		// site names reject dots.
		m, err := iupdater.OpenStore(filepath.Join(*dataDir, "fleet.manifest"))
		if err != nil {
			return fmt.Errorf("fleet manifest: %w", err)
		}
		s.manifest = m
		defer m.Close()
	}
	var cancels []func()
	defer func() {
		// On a failed startup, release whatever was wired so far; after
		// a clean serve this is a no-op (the cleanup already ran).
		for _, c := range cancels {
			c()
		}
		s.fleet.Close()
	}()
	for i, spec := range specs {
		opts := []iupdater.Option{
			iupdater.WithWorkers(*workers), iupdater.WithUpdateConcurrency(*updateConc),
			iupdater.WithTracer(s.tracer, spec.name),
		}
		log.Printf("site %s: preparing %s (seed %d)...", spec.name, spec.env, *seed+uint64(i))
		st, warm, err := buildSite(spec, *seed+uint64(i), *dataDir, *retain, opts)
		if err != nil {
			return err
		}
		if warm {
			log.Printf("site %s: warm restart from %s (snapshot v%d, %d versions retained)",
				spec.name, st.d.Store().Dir(), st.d.Version(), len(st.d.Store().Versions()))
		} else {
			log.Printf("site %s: surveyed: %d links, %d cells%s",
				spec.name, st.tb.Links(), st.tb.NumCells(), durabilityNote(st.d))
		}
		if *monitorOn {
			if err := st.enableMonitor(); err != nil {
				return err
			}
		}
		updates, cancelUpdates := st.d.Updates()
		cancels = append(cancels, cancelUpdates)
		go func(name string) {
			for snap := range updates {
				log.Printf("site %s: published fingerprint snapshot v%d", name, snap.Version())
			}
		}(spec.name)
		if err := s.addSite(st); err != nil {
			return err
		}
	}
	for _, spec := range follows {
		rep, err := iupdater.OpenReplica(spec.url, iupdater.WithReplicaTracer(s.tracer, spec.name))
		if err != nil {
			return fmt.Errorf("site %s: %w", spec.name, err)
		}
		if err := s.addSite(newReplicaSite(spec.name, rep)); err != nil {
			rep.Close()
			return err
		}
		log.Printf("site %s: following %s (replica lag under GET /sites)", spec.name, spec.url)
	}
	if err := s.restoreManifestSites(); err != nil {
		return err
	}
	if *monitorOn {
		log.Printf("drift monitors enabled (GET /drift, GET /sites)")
	}
	if *pprofOn {
		log.Printf("pprof enabled under /debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.handler()}
	srv.RegisterOnShutdown(s.cancelDrain)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving %d site(s) %v on %s (POST /locate|/update|/rollback, GET /snapshot|/drift|/records|/sites|/metrics|/traces|/healthz; per-site under /sites/{name}/...)",
		len(s.sites), s.fleet.Names(), ln.Addr())
	return serveUntil(ctx, srv, ln, *drainTimeout, func() {
		// Monitors first (Fleet.Close waits out in-flight auto-updates,
		// whose publishes must still reach the logging subscriptions),
		// then the stores, then the subscriptions.
		if err := s.fleet.Close(); err != nil {
			log.Printf("closing fleet: %v", err)
		}
		for _, c := range cancels {
			c()
		}
		cancels = nil
	})
}

// buildVersion reports the main-module version baked into the binary,
// "(devel)" for local builds.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		return bi.Main.Version
	}
	return "unknown"
}

func durabilityNote(d *iupdater.Deployment) string {
	if st := d.Store(); st != nil {
		return fmt.Sprintf(", persisted to %s", st.Dir())
	}
	return " (in-memory: snapshots do not survive a restart)"
}

// serveUntil serves on ln until ctx is cancelled (SIGINT/SIGTERM in
// production), then drains in-flight requests via http.Server.Shutdown
// bounded by timeout, and finally runs cleanup — stopping the monitor
// goroutines and any in-flight auto-update cleanly. A server error (e.g.
// a dead listener) ends the serve without waiting for the signal.
func serveUntil(ctx context.Context, srv *http.Server, ln net.Listener, timeout time.Duration, cleanup func()) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var err error
	select {
	case err = <-errc:
	case <-ctx.Done():
		log.Printf("shutting down: draining in-flight requests (timeout %s)", timeout)
		sctx, cancel := context.WithTimeout(context.Background(), timeout)
		err = srv.Shutdown(sctx)
		cancel()
		if serr := <-errc; serr != nil && serr != http.ErrServerClosed && err == nil {
			err = serr
		}
	}
	cleanup()
	if err == http.ErrServerClosed {
		err = nil
	}
	return err
}
