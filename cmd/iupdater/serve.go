package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"iupdater"
)

// server exposes a Deployment over HTTP/JSON. Localization queries hit
// the lock-free snapshot path; updates are serialized by the Deployment's
// write path. The testbed stands in for the physical radio hardware, so
// update requests may either carry raw measurement matrices or just name
// an elapsed time for the simulator to measure at.
//
// With -monitor, every measurement served through POST /locate also
// feeds a drift Monitor: when the live traffic stops matching the
// database the monitor surveys the testbed at the current simulated
// clock and refreshes the snapshot automatically; GET /drift reports its
// counters.
type server struct {
	d       *iupdater.Deployment
	tb      *iupdater.Testbed
	mon     *iupdater.Monitor
	workers int
	pprof   bool

	// mu guards clock — the simulated elapsed deployment time advanced
	// by testbed-driven updates — and serializes all testbed
	// measurements (the channel simulator is not safe for concurrent
	// use: both POST /update demo requests and the monitor's sampler
	// measure from it).
	mu    sync.Mutex
	clock time.Duration
}

func newServer(d *iupdater.Deployment, tb *iupdater.Testbed, workers int) *server {
	return &server{d: d, tb: tb, workers: workers}
}

// enableMonitor attaches a drift monitor whose reference surveys are
// taken from the testbed at the server's simulated clock.
func (s *server) enableMonitor(opts ...iupdater.MonitorOption) error {
	mon, err := iupdater.NewMonitor(s.d, iupdater.SamplerFunc(func(refs []int) (iupdater.UpdateInputs, error) {
		s.mu.Lock()
		defer s.mu.Unlock()
		xr, _ := s.tb.ReferenceMatrix(s.clock, refs)
		return iupdater.UpdateInputs{
			NoDecrease: s.tb.NoDecreaseMatrix(s.clock),
			Known:      s.tb.Mask(),
			References: xr,
		}, nil
	}), opts...)
	if err != nil {
		return err
	}
	s.mon = mon
	return nil
}

// observe feeds one served measurement to the monitor, if attached.
// Malformed vectors are simply not observed — the locate handler
// reports the error to the client.
func (s *server) observe(rss []float64) {
	if s.mon != nil {
		_ = s.mon.Observe(rss)
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /locate", s.handleLocate)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /drift", s.handleDrift)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "version": s.d.Version()})
	})
	if s.pprof {
		// Profiling of the live update/locate hot paths, opt-in via
		// -pprof: e.g. `go tool pprof http://host/debug/pprof/profile`
		// while driving POST /update traffic.
		// Methodless patterns, like net/http/pprof's own registrations:
		// the symbolization protocol POSTs to /debug/pprof/symbol.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

type locateRequest struct {
	// RSS is a single online measurement (one reading per link).
	RSS []float64 `json:"rss,omitempty"`
	// Batch is a set of measurements localized against one consistent
	// snapshot; mutually exclusive with RSS.
	Batch [][]float64 `json:"batch,omitempty"`
}

type positionJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

type locateResponse struct {
	Version   uint64         `json:"version"`
	Position  *positionJSON  `json:"position,omitempty"`
	Positions []positionJSON `json:"positions,omitempty"`
}

func (s *server) handleLocate(w http.ResponseWriter, r *http.Request) {
	var req locateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if (req.RSS == nil) == (req.Batch == nil) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("provide exactly one of rss or batch"))
		return
	}
	// Pin one snapshot so the reported version matches the database every
	// estimate in the response was computed against.
	snap := s.d.Snapshot()
	resp := locateResponse{Version: snap.Version()}
	if req.RSS != nil {
		p, err := snap.Locate(req.RSS)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		s.observe(req.RSS)
		resp.Position = &positionJSON{X: p.X, Y: p.Y}
	} else {
		ps, err := snap.LocateBatch(r.Context(), req.Batch, s.workers)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
		for _, rss := range req.Batch {
			s.observe(rss)
		}
		resp.Positions = make([]positionJSON, len(ps))
		for i, p := range ps {
			resp.Positions[i] = positionJSON{X: p.X, Y: p.Y}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

type updateRequest struct {
	// Days advances the simulated deployment clock and lets the testbed
	// take the measurements (demo mode). Ignored when raw matrices are
	// provided.
	Days float64 `json:"days,omitempty"`
	// NoDecrease, Known and References are the raw update inputs
	// (row-major: [link][location]) for callers with real measurements.
	NoDecrease [][]float64 `json:"no_decrease,omitempty"`
	Known      [][]bool    `json:"known,omitempty"`
	References [][]float64 `json:"references,omitempty"`
}

type updateResponse struct {
	Version    uint64 `json:"version"`
	References []int  `json:"references"`
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	refs, err := s.d.ReferenceLocations()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	var noDec, xr iupdater.Matrix
	var known iupdater.Mask
	var at time.Duration
	if req.References != nil {
		if noDec, err = iupdater.MatrixFromRows(req.NoDecrease); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("no_decrease: %w", err))
			return
		}
		if known, err = iupdater.MaskFromRows(req.Known); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("known: %w", err))
			return
		}
		if xr, err = iupdater.MatrixFromRows(req.References); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("references: %w", err))
			return
		}
	} else {
		if req.Days <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("provide days > 0 or raw measurement matrices"))
			return
		}
		// The lock both freezes the clock and serializes the testbed
		// measurements against the monitor's sampler.
		s.mu.Lock()
		at = s.clock + time.Duration(req.Days*float64(24*time.Hour))
		noDec = s.tb.NoDecreaseMatrix(at)
		known = s.tb.Mask()
		xr, _ = s.tb.ReferenceMatrix(at, refs)
		s.mu.Unlock()
	}
	snap, err := s.d.Update(noDec, known, xr)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	if at > 0 {
		// Advance the simulated clock only once the update succeeded, so
		// a failed request can be retried at the same elapsed time.
		s.mu.Lock()
		if at > s.clock {
			s.clock = at
		}
		s.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, updateResponse{Version: snap.Version(), References: refs})
}

type snapshotResponse struct {
	Version      uint64      `json:"version"`
	Links        int         `json:"links"`
	Cells        int         `json:"cells"`
	Fingerprints [][]float64 `json:"fingerprints"`
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.d.Snapshot()
	fp := snap.Fingerprints()
	writeJSON(w, http.StatusOK, snapshotResponse{
		Version:      snap.Version(),
		Links:        fp.Rows(),
		Cells:        fp.Cols(),
		Fingerprints: fp.ToRows(),
	})
}

// driftResponse mirrors iupdater.MonitorStats over the wire.
type driftResponse struct {
	Queries           uint64  `json:"queries"`
	Residual          float64 `json:"residual_db"`
	Score             float64 `json:"score"`
	Detections        uint64  `json:"detections"`
	UpdatesTriggered  uint64  `json:"updates_triggered"`
	UpdatesCompleted  uint64  `json:"updates_completed"`
	UpdateErrors      uint64  `json:"update_errors"`
	Suppressed        uint64  `json:"suppressed"`
	CooldownRemaining int     `json:"cooldown_remaining"`
	UpdateInFlight    bool    `json:"update_in_flight"`
	Version           uint64  `json:"version"`
	LastError         string  `json:"last_error,omitempty"`
}

func (s *server) handleDrift(w http.ResponseWriter, r *http.Request) {
	if s.mon == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("drift monitor disabled (start with -monitor)"))
		return
	}
	st := s.mon.Stats()
	writeJSON(w, http.StatusOK, driftResponse{
		Queries:           st.Queries,
		Residual:          st.Residual,
		Score:             st.Score,
		Detections:        st.Detections,
		UpdatesTriggered:  st.UpdatesTriggered,
		UpdatesCompleted:  st.UpdatesCompleted,
		UpdateErrors:      st.UpdateErrors,
		Suppressed:        st.Suppressed,
		CooldownRemaining: st.CooldownRemaining,
		UpdateInFlight:    st.UpdateInFlight,
		Version:           st.SnapshotVersion,
		LastError:         st.LastError,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("iupdater: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	envName := envFlag(fs)
	seed := fs.Uint64("seed", 1, "deployment seed")
	addr := fs.String("addr", ":8080", "listen address")
	workers := fs.Int("workers", 0, "batch-locate worker pool size (0 = GOMAXPROCS)")
	updateConc := fs.Int("update-concurrency", 1, "ALS sweep workers for Update (0 = GOMAXPROCS, 1 = sequential)")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	monitorOn := fs.Bool("monitor", false, "auto-update: detect drift from /locate traffic and refresh the database")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline for in-flight requests")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := pickEnv(*envName)
	if err != nil {
		return err
	}
	tb := iupdater.NewTestbed(env, *seed)
	log.Printf("surveying %s (seed %d)...", env.Name(), *seed)
	d, labor, err := tb.Deploy(0, 50,
		iupdater.WithWorkers(*workers), iupdater.WithUpdateConcurrency(*updateConc))
	if err != nil {
		return err
	}
	log.Printf("deployment ready: %d links, %d cells, survey labor %s",
		tb.Links(), tb.NumCells(), labor.Duration.Round(time.Second))

	updates, cancelUpdates := d.Updates()
	go func() {
		for snap := range updates {
			log.Printf("published fingerprint snapshot v%d", snap.Version())
		}
	}()

	s := newServer(d, tb, *workers)
	s.pprof = *pprofOn
	if *monitorOn {
		if err := s.enableMonitor(); err != nil {
			return err
		}
		log.Printf("drift monitor enabled (GET /drift)")
	}
	if *pprofOn {
		log.Printf("pprof enabled under /debug/pprof/")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving on %s (POST /locate, POST /update, GET /snapshot, GET /drift)", ln.Addr())
	return serveUntil(ctx, srv, ln, *drainTimeout, func() {
		// The monitor first: Close waits for an in-flight auto-update,
		// whose publish must still reach the logging subscription.
		if s.mon != nil {
			s.mon.Close()
		}
		cancelUpdates()
	})
}

// serveUntil serves on ln until ctx is cancelled (SIGINT/SIGTERM in
// production), then drains in-flight requests via http.Server.Shutdown
// bounded by timeout, and finally runs cleanup — stopping the monitor
// goroutine and any in-flight auto-update cleanly. A server error (e.g.
// a dead listener) ends the serve without waiting for the signal.
func serveUntil(ctx context.Context, srv *http.Server, ln net.Listener, timeout time.Duration, cleanup func()) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var err error
	select {
	case err = <-errc:
	case <-ctx.Done():
		log.Printf("shutting down: draining in-flight requests (timeout %s)", timeout)
		sctx, cancel := context.WithTimeout(context.Background(), timeout)
		err = srv.Shutdown(sctx)
		cancel()
		if serr := <-errc; serr != nil && serr != http.ErrServerClosed && err == nil {
			err = serr
		}
	}
	cleanup()
	if err == http.ErrServerClosed {
		err = nil
	}
	return err
}
