// Command iupdater demonstrates the library on the simulated testbed:
//
//	iupdater survey   [-env office|library|hall] [-seed n]
//	iupdater update   [-env ...] [-seed n] [-days d]
//	iupdater localize [-env ...] [-seed n] [-days d] [-x m -y m]
//	iupdater labor    [-scale k]
//	iupdater serve    [-env ...] [-seed n] [-addr :8080] [-workers n]
//	                  [-sites name=env,...] [-data-dir dir] [-retain n]
//	                  [-follow name=url,...]
//	iupdater replicate -leader url [-site name] [-addr :8081]
//
// survey prints the original fingerprint database and its labor cost;
// update runs the iUpdater refresh after the given number of days and
// reports accuracy and labor; localize runs an online localization with
// the refreshed database; labor prints the update-cost model; serve runs
// a long-lived localization service over HTTP/JSON (POST /locate,
// POST /update, GET /snapshot) backed by testbed-seeded Deployments.
// With -monitor, serve also attaches a drift Monitor per site fed from
// /locate traffic (status under GET /drift) that refreshes the database
// automatically when the environment changes; SIGINT/SIGTERM drain the
// server gracefully.
//
// With -sites, serve hosts a fleet of named site deployments: GET /sites
// lists every site's version, search-tier and drift summary, GET
// /metrics serves the fleet-wide Prometheus text exposition (latency
// histograms, search work, drift and per-link attribution, store and
// replication state, one site label per sample), and each site answers
// under /sites/{name}/locate|update|snapshot|drift|rollback|records
// (the bare routes remain aliases for the first site). Sites also come
// and go at runtime: PUT /sites/{name} creates one (JSON body: env,
// seed, token, monitor), DELETE removes it, and a site created with a
// token requires it as a bearer Authorization header on every mutating
// route. With -data-dir, every
// published snapshot is persisted to an append-only checksummed store
// under dir/<site>, a restart warm-starts from the latest version (no
// re-survey, resumed drift baseline), API-created sites are recorded
// in dir/fleet.manifest and re-created warm on the next start, POST
// .../rollback?version=N republishes a retained version, and -retain
// bounds how many versions each site keeps. -resident caps how many
// sites stay materialized in RAM: past the cap, cold durable sites
// park and the next query re-materializes them from their store.
//
// Durable sites also stream their snapshot record log to followers
// under GET /records (per-site: /sites/{name}/records). A follower —
// serve's -follow flag, or the dedicated replicate mode — tails that
// endpoint, validates every record like the store's own crash
// recovery, and serves read-only localization that is bit-identical to
// the leader at the same version; its replication lag shows under
// GET /sites, and writes against it answer 409.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"iupdater"
	"iupdater/internal/eval"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "survey":
		err = runSurvey(os.Args[2:])
	case "update":
		err = runUpdate(os.Args[2:])
	case "localize":
		err = runLocalize(os.Args[2:])
	case "labor":
		err = runLabor(os.Args[2:])
	case "serve":
		err = runServe(os.Args[2:])
	case "replicate":
		err = runReplicate(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "iupdater: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: iupdater <survey|update|localize|labor|serve> [flags]

  survey    run the original full site survey and print its cost
  update    refresh the database after -days days of drift
  localize  refresh, then localize a target at (-x, -y)
  labor     print the labor-cost model for a -scale x larger area
  serve     run the HTTP localization service (multi-site with -sites,
            durable snapshot stores with -data-dir, follower sites
            with -follow)
  replicate run a read-only follower of a leader's records endpoint
`)
}

func envFlag(fs *flag.FlagSet) *string {
	return fs.String("env", "office", "environment: office, library or hall")
}

func pickEnv(name string) (iupdater.Environment, error) {
	switch name {
	case "office":
		return iupdater.Office(), nil
	case "library":
		return iupdater.Library(), nil
	case "hall":
		return iupdater.Hall(), nil
	default:
		return iupdater.Environment{}, fmt.Errorf("unknown environment %q", name)
	}
}

func runSurvey(args []string) error {
	fs := flag.NewFlagSet("survey", flag.ExitOnError)
	envName := envFlag(fs)
	seed := fs.Uint64("seed", 1, "deployment seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := pickEnv(*envName)
	if err != nil {
		return err
	}
	tb := iupdater.NewTestbed(env, *seed)
	_, labor := tb.Survey(0, 50)
	g := env.Geometry()
	fmt.Printf("environment: %s (%.0f m x %.0f m, %d links, %d cells)\n",
		env.Name(), g.WidthM, g.HeightM, g.Links, g.Links*g.PerStrip)
	fmt.Printf("full survey: %d locations, %s of human labor\n",
		labor.Locations, labor.Duration.Round(time.Second))
	return nil
}

func runUpdate(args []string) error {
	fs := flag.NewFlagSet("update", flag.ExitOnError)
	envName := envFlag(fs)
	seed := fs.Uint64("seed", 1, "deployment seed")
	days := fs.Int("days", 45, "days of drift before the update")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := pickEnv(*envName)
	if err != nil {
		return err
	}
	tb := iupdater.NewTestbed(env, *seed)
	original, fullLabor := tb.SurveyMatrix(0, 50)
	d, err := iupdater.NewDeployment(original, tb.Geometry())
	if err != nil {
		return err
	}
	at := time.Duration(*days) * 24 * time.Hour
	refs, err := d.ReferenceLocations()
	if err != nil {
		return err
	}
	xr, refLabor := tb.ReferenceMatrix(at, refs)
	snap, err := d.Update(tb.NoDecreaseMatrix(at), tb.Mask(), xr)
	if err != nil {
		return err
	}
	fresh := snap.Fingerprints()

	truth := tb.TrueMatrix(at)
	known := tb.Mask()
	var errFresh, errStale float64
	var cnt int
	for i := 0; i < truth.Rows(); i++ {
		for j := 0; j < truth.Cols(); j++ {
			if known.Known(i, j) {
				continue
			}
			errFresh += math.Abs(fresh.At(i, j) - truth.At(i, j))
			errStale += math.Abs(original.At(i, j) - truth.At(i, j))
			cnt++
		}
	}
	fmt.Printf("update after %d days in %s (snapshot v%d)\n", *days, env.Name(), snap.Version())
	fmt.Printf("reference locations (%d): %v\n", len(refs), refs)
	fmt.Printf("labor: %s (vs %s for a full re-survey, %.1f%% saved)\n",
		refLabor.Duration.Round(time.Second), fullLabor.Duration.Round(time.Second),
		100*(1-refLabor.Duration.Seconds()/fullLabor.Duration.Seconds()))
	fmt.Printf("mean error on labor-cost entries: %.2f dB reconstructed vs %.2f dB stale\n",
		errFresh/float64(cnt), errStale/float64(cnt))
	return nil
}

func runLocalize(args []string) error {
	fs := flag.NewFlagSet("localize", flag.ExitOnError)
	envName := envFlag(fs)
	seed := fs.Uint64("seed", 1, "deployment seed")
	days := fs.Int("days", 45, "days of drift before the update")
	x := fs.Float64("x", 6.0, "target x (m)")
	y := fs.Float64("y", 4.5, "target y (m)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	env, err := pickEnv(*envName)
	if err != nil {
		return err
	}
	tb := iupdater.NewTestbed(env, *seed)
	d, _, err := tb.Deploy(0, 50)
	if err != nil {
		return err
	}
	at := time.Duration(*days) * 24 * time.Hour
	refs, err := d.ReferenceLocations()
	if err != nil {
		return err
	}
	xr, _ := tb.ReferenceMatrix(at, refs)
	if _, err := d.Update(tb.NoDecreaseMatrix(at), tb.Mask(), xr); err != nil {
		return err
	}
	rss := tb.MeasureOnline(*x, *y, at+time.Hour)
	est, err := d.Locate(rss)
	if err != nil {
		return err
	}
	fmt.Printf("target at (%.2f, %.2f) m; online RSS: %v\n", *x, *y, compact(rss))
	fmt.Printf("estimate: (%.2f, %.2f) m, error %.2f m\n", est.X, est.Y, math.Hypot(est.X-*x, est.Y-*y))
	return nil
}

func runLabor(args []string) error {
	fs := flag.NewFlagSet("labor", flag.ExitOnError)
	scale := fs.Int("scale", 10, "edge-length multiplier of the deployment area")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Print(eval.LaborSavings().Render())
	if *scale > 1 {
		fmt.Printf("\nat %dx the edge length:\n", *scale)
		r := eval.Fig20LaborScaling()
		for _, pt := range r.Points {
			if pt.Scale == *scale {
				fmt.Printf("traditional: %.1f h, iUpdater: %.2f h\n",
					pt.TraditionalHours, pt.IUpdaterHours)
			}
		}
	}
	return nil
}

func compact(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = math.Round(x*10) / 10
	}
	return out
}
